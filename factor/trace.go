package factor

// trace.go exposes the critical-path analysis (internal/trace) on traced
// factorization handles, so CLIs and services can report the paper's
// Fig. 3-4 quantities — chain length, panel time on the path, per-worker
// idle — without importing internal packages.

import (
	"fmt"
	"io"

	"repro/internal/sched"
	"repro/internal/trace"
)

// CriticalPathSummary is the dependency-chain analysis of one traced
// factorization: the longest chain through the executed task graph weighted
// by measured durations, and where each worker's time went. Produced by
// LUFactorization.CriticalPath / QRFactorization.CriticalPath; all times in
// seconds.
type CriticalPathSummary struct {
	// PathTasks labels the chain's tasks in execution order ("P k=0(P)").
	PathTasks []string
	// Length is the chain's summed duration — the lower bound no worker
	// count can beat. Makespan is the observed run length, and Fraction is
	// Length/Makespan (1.0 = fully serialized, 1/workers = perfect scaling).
	Length   float64
	Makespan float64
	Fraction float64
	// OnPathByKind and OffPathByKind split task time by kind ("P", "L",
	// "U", "S") according to chain membership: panel time on the path is
	// the paper's Fig. 3 bottleneck.
	OnPathByKind  map[string]float64
	OffPathByKind map[string]float64
	// WorkerBusy[w] and WorkerIdle[w] attribute each worker's share of the
	// makespan.
	WorkerBusy []float64
	WorkerIdle []float64
}

// summarize converts the internal analysis into the public form.
func summarize(events []sched.Event, g *sched.Graph, workers int) (*CriticalPathSummary, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("factor: no trace events; set Options.Trace to enable critical-path analysis")
	}
	tr := trace.FromSched(events, g, workers)
	cp := trace.AnalyzeCriticalPath(tr, g)
	s := &CriticalPathSummary{
		PathTasks:     cp.PathLabels(g),
		Length:        cp.Length,
		Makespan:      cp.Makespan,
		Fraction:      cp.Fraction,
		OnPathByKind:  map[string]float64{},
		OffPathByKind: map[string]float64{},
		WorkerBusy:    cp.WorkerBusy,
		WorkerIdle:    cp.WorkerIdle,
	}
	for k, v := range cp.OnPath {
		s.OnPathByKind[k.String()] = v
	}
	for k, v := range cp.OffPath {
		s.OffPathByKind[k.String()] = v
	}
	return s, nil
}

// CriticalPath analyzes the factorization's executed task graph. It
// requires a trace (Options.Trace) and errors without one.
func (f *LUFactorization) CriticalPath() (*CriticalPathSummary, error) {
	return summarize(f.res.Events, f.res.Graph, f.workers)
}

// CriticalPath analyzes the factorization's executed task graph. It
// requires a trace (Options.Trace) and errors without one.
func (f *QRFactorization) CriticalPath() (*CriticalPathSummary, error) {
	return summarize(f.res.Events, f.res.Graph, f.workers)
}

// Report renders the summary as the CLI text block: one line of chain
// totals, then per-worker idle attribution.
func (s *CriticalPathSummary) Report(w io.Writer) {
	fmt.Fprintf(w, "critical path: %.6fs over %d tasks (makespan %.6fs, fraction %.3f)\n",
		s.Length, len(s.PathTasks), s.Makespan, s.Fraction)
	for _, kind := range []string{"P", "L", "U", "S"} {
		on, off := s.OnPathByKind[kind], s.OffPathByKind[kind]
		if on == 0 && off == 0 {
			continue
		}
		fmt.Fprintf(w, "  %s: on-path %.6fs off-path %.6fs\n", kind, on, off)
	}
	for wk := range s.WorkerBusy {
		fmt.Fprintf(w, "  worker %d: busy %.6fs idle %.6fs\n", wk, s.WorkerBusy[wk], s.WorkerIdle[wk])
	}
}

