package factor

// metrics.go rebuilds the engine's self-healing counters on internal/obs:
// every Stats() field is backed by a registered metric, so Engine.Stats and
// a Prometheus /metrics scrape (cmd/facsvc) read the same storage through
// one code path instead of parallel atomic fields and hand-rolled text.

import (
	"repro/internal/obs"
	"repro/internal/sched"
)

// engineMetrics is the engine's registered metric set. Counter/gauge writes
// are lock-free; the registry is only locked at registration and Gather.
type engineMetrics struct {
	reg *obs.Registry

	retries *obs.Counter
	shed    *obs.Counter
	stalls  *obs.Counter
	batched *obs.Counter

	inFlight *obs.Gauge

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter

	batchFlushes *obs.Counter

	corruptions        *obs.Counter
	panelRecomputes    *obs.Counter
	verifyFailRetries  *obs.Counter
	integrityEvictions *obs.Counter

	// requestSeconds is the end-to-end request latency (admission through
	// result, retries included), labeled op="lu"|"qr". Only successful
	// requests are observed: shed and failed requests would pollute the
	// distribution with fast-fail samples.
	requestSeconds *obs.HistogramVec
}

// newEngineMetrics registers the engine's metrics under the namespace
// (e.g. "engine" → engine_retries_total). The pool-task counter reads the
// pool's own completed count at gather time, so it never double-accounts.
func newEngineMetrics(ns string, pool *sched.Pool) *engineMetrics {
	reg := obs.NewRegistry()
	m := &engineMetrics{
		reg: reg,
		retries: reg.Counter(ns+"_retries_total",
			"Factorization attempts beyond each request's first."),
		shed: reg.Counter(ns+"_shed_total",
			"Requests rejected with ErrOverloaded by admission control."),
		stalls: reg.Counter(ns+"_stalled_total",
			"Requests the watchdog cancelled with ErrStalled."),
		inFlight: reg.Gauge(ns+"_in_flight",
			"Requests currently admitted and being served."),
		cacheHits: reg.Counter(ns+"_cache_hits_total",
			"Cached-entry-point requests served without a new factorization."),
		cacheMisses: reg.Counter(ns+"_cache_misses_total",
			"Cached-entry-point requests that had to factor."),
		cacheEvictions: reg.Counter(ns+"_cache_evictions_total",
			"Result-cache LRU entries dropped to stay within CacheEntries."),
		batched: reg.Counter(ns+"_batched_requests_total",
			"Factorization attempts served through a coalesced submission."),
		batchFlushes: reg.Counter(ns+"_batch_flushes_total",
			"Merged submissions issued for coalesced requests."),
		corruptions: reg.Counter(ns+"_corruptions_detected_total",
			"ABFT checksum mismatches flagged by verified factorizations."),
		panelRecomputes: reg.Counter(ns+"_panels_recomputed_total",
			"Corrupted CALU panels repaired in place by a recompute."),
		verifyFailRetries: reg.Counter(ns+"_verify_fail_retries_total",
			"Full-request retries taken after an attempt failed with ErrCorrupted."),
		integrityEvictions: reg.Counter(ns+"_cache_integrity_evictions_total",
			"Result-cache entries evicted on a checksum mismatch against their stored digest."),
		requestSeconds: reg.HistogramVec(ns+"_request_seconds",
			"End-to-end latency of successful factorization requests, by op.",
			nil, "op"),
	}
	reg.CounterFunc(ns+"_pool_tasks_total",
		"Tasks the engine's scheduler pool has accounted for since start.",
		func() float64 { return float64(pool.CompletedTasks()) })
	return m
}
