package factor

// Tests for the serving-oriented engine features: the backoff clamp and
// admission-ordering bugfixes, request coalescing, and the content-addressed
// result cache.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBackoffDelayNeverExceedsMax is the regression test for the jitter
// clamp bug: jitter used to be added after clamping to RetryBackoffMax, so
// late retries could sleep up to 1.5x the configured cap. Every delay, at
// every attempt, must stay within [0, max].
func TestBackoffDelayNeverExceedsMax(t *testing.T) {
	const (
		base = 2 * time.Millisecond
		max  = 50 * time.Millisecond
	)
	for attempt := 0; attempt < 40; attempt++ {
		for trial := 0; trial < 200; trial++ {
			d := BackoffDelay(base, max, attempt)
			if d <= 0 || d > max {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, max)
			}
		}
	}
	// The shift overflow path (attempt large enough that base<<attempt
	// wraps negative) must also land on the clamped max, not a garbage
	// duration.
	for trial := 0; trial < 200; trial++ {
		if d := BackoffDelay(base, max, 200); d <= 0 || d > max {
			t.Fatalf("overflowed attempt: delay %v outside (0, %v]", d, max)
		}
	}
}

// TestServeChecksContextBeforeAdmission is the regression test for the
// admission-ordering bug: a request arriving with an already-cancelled
// context used to consume an admission decision first, so on a saturated
// engine it was misreported as ErrOverloaded (and counted as shed),
// telling a retrying client to back off for capacity the engine never
// lacked. The cancelled request must report its own cancellation and leave
// the Shed counter alone; a live request on the same saturated engine must
// still shed.
func TestServeChecksContextBeforeAdmission(t *testing.T) {
	gate := make(chan struct{})
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 2, MaxInFlight: 1,
		Interceptor: func(info TaskInfo) error {
			<-gate
			return nil
		},
	})
	defer eng.Close()

	// Saturate the single slot with a request blocked inside the pool.
	first := make(chan error, 1)
	go func() {
		_, err := eng.LU(Random(16, 16, 1), Options{BlockSize: 4})
		first <- err
	}()
	for i := 0; eng.Stats().InFlight == 0; i++ {
		if i > 2000 {
			close(gate)
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// A pre-cancelled request must report cancellation, not overload.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.LUCtx(cancelled, Random(16, 16, 2), Options{BlockSize: 4})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, ErrCancelled) {
		close(gate)
		t.Fatalf("pre-cancelled request on saturated engine: err = %v, want context.Canceled via ErrCancelled", err)
	}
	if errors.Is(err, ErrOverloaded) {
		close(gate)
		t.Fatalf("pre-cancelled request misclassified as overload: %v", err)
	}
	if shed := eng.Stats().Shed; shed != 0 {
		close(gate)
		t.Fatalf("pre-cancelled request bumped Shed to %d", shed)
	}

	// A live request must still be shed by admission control.
	_, err = eng.LUCtx(context.Background(), Random(16, 16, 3), Options{BlockSize: 4})
	if !errors.Is(err, ErrOverloaded) {
		close(gate)
		t.Fatalf("live request on saturated engine: err = %v, want ErrOverloaded", err)
	}
	if shed := eng.Stats().Shed; shed != 1 {
		close(gate)
		t.Fatalf("Shed = %d after one shed request, want 1", shed)
	}

	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("blocked request failed after release: %v", err)
	}
}

// TestBatchedMatchesUnbatched checks the coalescing path end to end: a
// burst of eligible requests on a batching engine produces factors
// bit-identical to an unbatched engine's, rides fewer submissions than
// requests, and leaves the callers' matrices holding the factors.
func TestBatchedMatchesUnbatched(t *testing.T) {
	opt := Options{BlockSize: 8}
	const n = 6
	inputs := make([]*Matrix, n)
	for i := range inputs {
		inputs[i] = Random(48, 24+(i%2)*8, int64(i+1))
	}

	plain := NewEngine(2)
	want := make([]*Matrix, n)
	wantPerm := make([][]int, n)
	for i, in := range inputs {
		a := in.Clone()
		f, err := plain.LU(a, opt)
		if err != nil {
			t.Fatalf("unbatched LU %d: %v", i, err)
		}
		want[i] = a
		wantPerm[i] = f.PermutationVector()
	}
	plain.Close()

	eng := NewEngineWithConfig(EngineConfig{
		Workers:     2,
		BatchWindow: 20 * time.Millisecond,
	})
	defer eng.Close()
	got := make([]*Matrix, n)
	perms := make([][]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range inputs {
		i := i
		got[i] = inputs[i].Clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := eng.LU(got[i], opt)
			errs[i] = err
			if err == nil {
				perms[i] = f.PermutationVector()
			}
		}()
	}
	wg.Wait()
	for i := range inputs {
		if errs[i] != nil {
			t.Fatalf("batched LU %d: %v", i, errs[i])
		}
		if !got[i].Equal(want[i]) {
			t.Fatalf("batched LU %d factors differ from unbatched", i)
		}
		for k := range perms[i] {
			if perms[i][k] != wantPerm[i][k] {
				t.Fatalf("batched LU %d permutation differs at %d", i, k)
			}
		}
	}

	s := eng.Stats()
	if s.BatchedRequests != n {
		t.Fatalf("BatchedRequests = %d, want %d", s.BatchedRequests, n)
	}
	if s.BatchFlushes < 1 || s.BatchFlushes > n {
		t.Fatalf("BatchFlushes = %d, want within [1, %d]", s.BatchFlushes, n)
	}
}

// TestBatchedQRMatchesUnbatched covers the QR side of coalescing.
func TestBatchedQRMatchesUnbatched(t *testing.T) {
	opt := Options{BlockSize: 8}
	in := Random(40, 24, 9)

	plain := NewEngine(2)
	want := in.Clone()
	if _, err := plain.QR(want, opt); err != nil {
		t.Fatalf("unbatched QR: %v", err)
	}
	plain.Close()

	eng := NewEngineWithConfig(EngineConfig{Workers: 2, BatchWindow: 5 * time.Millisecond})
	defer eng.Close()
	got := in.Clone()
	f, err := eng.QR(got, opt)
	if err != nil {
		t.Fatalf("batched QR: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("batched QR factors differ from unbatched")
	}
	if r := f.R(); r == nil {
		t.Fatal("batched QR handle has no R")
	}
	if eng.Stats().BatchedRequests != 1 {
		t.Fatalf("BatchedRequests = %d, want 1", eng.Stats().BatchedRequests)
	}
}

// TestBatchIneligibleBypasses checks the routing guards: wide and oversize
// matrices, and traced requests, skip the batcher entirely.
func TestBatchIneligibleBypasses(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{
		Workers: 2, BatchWindow: time.Millisecond, BatchMaxDim: 32,
	})
	defer eng.Close()

	wide := Random(8, 16, 1)
	if _, err := eng.LU(wide, Options{BlockSize: 4}); err != nil {
		t.Fatalf("wide LU on batching engine: %v", err)
	}
	big := Random(64, 48, 2)
	if _, err := eng.LU(big, Options{BlockSize: 8}); err != nil {
		t.Fatalf("oversize LU on batching engine: %v", err)
	}
	traced := Random(24, 24, 3)
	f, err := eng.LU(traced, Options{BlockSize: 8, Trace: true})
	if err != nil {
		t.Fatalf("traced LU on batching engine: %v", err)
	}
	if len(f.Events()) == 0 {
		t.Fatal("traced request lost its events (was it batched?)")
	}
	if s := eng.Stats(); s.BatchedRequests != 0 {
		t.Fatalf("BatchedRequests = %d for ineligible requests, want 0", s.BatchedRequests)
	}
}

// TestBatchFailureIsolated checks per-request isolation on the coalesced
// path: a singular batch member fails with ErrSingular while its
// batch-mate succeeds, and the caller's matrix is untouched by its own
// failed request.
func TestBatchFailureIsolated(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, BatchWindow: 20 * time.Millisecond})
	defer eng.Close()

	sing := NewMatrix(16, 16) // all zeros
	singOrig := sing.Clone()
	good := Random(16, 16, 4)

	var wg sync.WaitGroup
	var singErr, goodErr error
	wg.Add(2)
	go func() { defer wg.Done(); _, singErr = eng.LU(sing, Options{BlockSize: 4}) }()
	go func() { defer wg.Done(); _, goodErr = eng.LU(good, Options{BlockSize: 4}) }()
	wg.Wait()

	if !errors.Is(singErr, ErrSingular) {
		t.Fatalf("singular member: err = %v, want ErrSingular", singErr)
	}
	if goodErr != nil {
		t.Fatalf("good member failed alongside singular one: %v", goodErr)
	}
	if !sing.Equal(singOrig) {
		t.Fatal("failed batched request modified the caller's matrix")
	}
}

// TestBatchDrainOnClose checks Close flushes a pending window: a request
// sitting in an unexpired window when Close is called still completes.
func TestBatchDrainOnClose(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, BatchWindow: time.Hour})
	a := Random(20, 20, 5)
	done := make(chan error, 1)
	go func() {
		_, err := eng.LU(a, Options{BlockSize: 5})
		done <- err
	}()
	// Wait for the request to be sitting in the window.
	for i := 0; eng.Stats().BatchedRequests == 0; i++ {
		if i > 2000 {
			t.Fatal("request never reached the batcher")
		}
		time.Sleep(time.Millisecond)
	}
	eng.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("batched request failed across Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batched request never completed after Close")
	}
}

// TestCacheHitSkipsFactorization checks the content-addressed cache:
// repeated identical requests are served from the cache (hit counter moves,
// pool task counter does not), different inputs or options miss, and the
// input matrix is never modified.
func TestCacheHitSkipsFactorization(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, CacheEntries: 8})
	defer eng.Close()
	opt := Options{BlockSize: 8}
	a := Random(32, 32, 6)
	orig := a.Clone()

	f1, hit, err := eng.LUCachedCtx(context.Background(), a, opt)
	if err != nil {
		t.Fatalf("first cached LU: %v", err)
	}
	if hit {
		t.Fatal("first request reported a cache hit")
	}
	if !a.Equal(orig) {
		t.Fatal("cached entry point modified the input on a miss")
	}
	tasksAfterMiss := eng.Stats().PoolTasks

	f2, hit, err := eng.LUCachedCtx(context.Background(), a, opt)
	if err != nil {
		t.Fatalf("second cached LU: %v", err)
	}
	if !hit {
		t.Fatal("identical repeat request missed the cache")
	}
	if f2 != f1 {
		t.Fatal("cache hit returned a different handle")
	}
	if got := eng.Stats().PoolTasks; got != tasksAfterMiss {
		t.Fatalf("cache hit ran %d new pool tasks", got-tasksAfterMiss)
	}
	if !a.Equal(orig) {
		t.Fatal("cached entry point modified the input on a hit")
	}

	// A different matrix, and the same matrix under different numeric
	// options, must both miss.
	b := Random(32, 32, 7)
	if _, hit, err = eng.LUCachedCtx(context.Background(), b, opt); err != nil || hit {
		t.Fatalf("different matrix: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err = eng.LUCachedCtx(context.Background(), a, Options{BlockSize: 16}); err != nil || hit {
		t.Fatalf("different options: hit=%v err=%v, want miss", hit, err)
	}
	// QR of the same bytes is a distinct key.
	if _, hit, err = eng.QRCachedCtx(context.Background(), a, opt); err != nil || hit {
		t.Fatalf("QR of LU-cached bytes: hit=%v err=%v, want miss", hit, err)
	}

	s := eng.Stats()
	if s.CacheHits != 1 || s.CacheMisses != 4 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/4", s.CacheHits, s.CacheMisses)
	}
}

// TestCacheEviction checks the LRU bound: filling past CacheEntries evicts
// the oldest entry, which then misses again.
func TestCacheEviction(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, CacheEntries: 2})
	defer eng.Close()
	opt := Options{BlockSize: 8}
	mats := []*Matrix{Random(16, 16, 1), Random(16, 16, 2), Random(16, 16, 3)}
	for i, m := range mats {
		if _, hit, err := eng.LUCachedCtx(context.Background(), m, opt); err != nil || hit {
			t.Fatalf("fill %d: hit=%v err=%v", i, hit, err)
		}
	}
	if ev := eng.Stats().CacheEvictions; ev != 1 {
		t.Fatalf("CacheEvictions = %d after overfilling by one, want 1", ev)
	}
	// The first entry was evicted: it misses; the last still hits.
	if _, hit, err := eng.LUCachedCtx(context.Background(), mats[0], opt); err != nil || hit {
		t.Fatalf("evicted entry: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := eng.LUCachedCtx(context.Background(), mats[2], opt); err != nil || !hit {
		t.Fatalf("resident entry: hit=%v err=%v, want hit", hit, err)
	}
}

// TestCacheFailuresNotCached checks a failed factorization is not stored:
// the same singular input fails again (and counts as a miss both times).
func TestCacheFailuresNotCached(t *testing.T) {
	eng := NewEngineWithConfig(EngineConfig{Workers: 2, CacheEntries: 4})
	defer eng.Close()
	sing := NewMatrix(12, 12)
	for i := 0; i < 2; i++ {
		if _, hit, err := eng.LUCachedCtx(context.Background(), sing, Options{BlockSize: 4}); !errors.Is(err, ErrSingular) || hit {
			t.Fatalf("attempt %d: hit=%v err=%v, want miss with ErrSingular", i, hit, err)
		}
	}
	if s := eng.Stats(); s.CacheHits != 0 {
		t.Fatalf("failed requests produced %d cache hits", s.CacheHits)
	}
}

// TestCacheDisabledFallback checks the cached entry points still work (and
// still never modify the input) on an engine with no cache configured.
func TestCacheDisabledFallback(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	a := Random(16, 16, 8)
	orig := a.Clone()
	for i := 0; i < 2; i++ {
		f, hit, err := eng.LUCachedCtx(context.Background(), a, Options{BlockSize: 4})
		if err != nil || hit || f == nil {
			t.Fatalf("uncached engine attempt %d: f=%v hit=%v err=%v", i, f != nil, hit, err)
		}
	}
	if !a.Equal(orig) {
		t.Fatal("uncached fallback modified the input")
	}
}
