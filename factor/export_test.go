package factor

// Internals exported to the package's own tests.

var BackoffDelay = backoffDelay
