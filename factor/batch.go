package factor

// Request coalescing: many small factorizations arriving within a short
// window are merged (sched.MergeGraphs) into ONE pool submission instead of
// one apiece — the paper's aggregation of small operations into fewer,
// larger ones, applied at the service level. A merged batch keeps the
// workers draining one combined ready set where per-request submissions
// would leave them idling between tiny graphs.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// batchPrep is one prepared factorization riding a coalesced submission:
// graph hands over its task graph (consumed by the merge), finish runs the
// request's post-execution bookkeeping with the combined submission's error.
type batchPrep interface {
	graph() *sched.Graph
	finish(runErr error) error
}

// batchItem is one enqueued request; done is closed once finish has run and
// err is set.
type batchItem struct {
	prep batchPrep
	done chan struct{}
	err  error
}

// batcher accumulates eligible requests for up to window (or maxReq
// requests, whichever comes first) and flushes them as one merged pool
// submission.
type batcher struct {
	e      *Engine
	window time.Duration
	maxReq int

	mu      sync.Mutex
	pending []*batchItem
	timer   *time.Timer
	closed  bool

	// flushes is the engine's registered batch-flush counter
	// (newEngineMetrics).
	flushes *obs.Counter
}

func newBatcher(e *Engine, window time.Duration, maxReq int) *batcher {
	return &batcher{e: e, window: window, maxReq: maxReq, flushes: e.met.batchFlushes}
}

// do enqueues prep and waits for its batch to run, returning the request's
// own finish error. Abandoning on ctx cancellation does not cancel the
// merged submission — batch-mates still complete; a wedged submission is the
// watchdog's and CloseWithTimeout's job.
func (b *batcher) do(ctx context.Context, prep batchPrep) error {
	it := &batchItem{prep: prep, done: make(chan struct{})}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrEngineClosed
	}
	b.pending = append(b.pending, it)
	if len(b.pending) >= b.maxReq {
		items := b.takeLocked()
		b.mu.Unlock()
		go b.flush(items)
	} else {
		if len(b.pending) == 1 {
			b.timer = time.AfterFunc(b.window, b.timedFlush)
		}
		b.mu.Unlock()
	}
	select {
	case <-it.done:
		return it.err
	case <-ctx.Done():
		return fmt.Errorf("%w waiting for batch: %w", ErrCancelled, ctx.Err())
	}
}

// takeLocked detaches the pending window; callers hold b.mu.
func (b *batcher) takeLocked() []*batchItem {
	items := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return items
}

// timedFlush fires when a window expires with fewer than maxReq requests.
func (b *batcher) timedFlush() {
	b.mu.Lock()
	items := b.takeLocked()
	b.mu.Unlock()
	go b.flush(items)
}

// flush merges the items' graphs into one submission, runs it, and
// completes every item with its own finish error. It must never leak a
// blocked waiter: any panic (merge, submit, a finish implementation) is
// converted into an error on every item still open.
func (b *batcher) flush(items []*batchItem) {
	if len(items) == 0 {
		return
	}
	finished := 0
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("factor: batch flush panicked: %v", r)
			for _, it := range items[finished:] {
				it.err = err
				close(it.done)
			}
		}
	}()
	graphs := make([]*sched.Graph, len(items))
	for i, it := range items {
		graphs[i] = it.prep.graph()
	}
	merged := sched.MergeGraphs(graphs...)
	var runErr error
	// calint:ignore ctx-propagation -- the merged submission deliberately outlives any single request's ctx (batch-mates share it; see do's doc comment)
	sub, err := b.e.pool.Submit(merged, sched.SubmitOptions{})
	if err != nil {
		runErr = err
	} else {
		_, runErr = sub.Wait()
	}
	b.flushes.Inc()
	for _, it := range items {
		it.err = it.prep.finish(runErr)
		close(it.done)
		finished++
	}
}

// luPrep adapts a prepared CALU request to the batchPrep interface,
// capturing the finished result for the serving goroutine.
type luPrep struct {
	p   *core.PreparedLU
	res *core.LUResult
}

func (w *luPrep) graph() *sched.Graph { return w.p.Graph() }

func (w *luPrep) finish(runErr error) error {
	res, err := w.p.Finish(runErr)
	w.res = res
	return err
}

// qrPrep adapts a prepared CAQR request to the batchPrep interface.
type qrPrep struct {
	p   *core.PreparedQR
	res *core.QRResult
}

func (w *qrPrep) graph() *sched.Graph { return w.p.Graph() }

func (w *qrPrep) finish(runErr error) error {
	res, err := w.p.Finish(runErr)
	w.res = res
	return err
}

// close flushes the pending window synchronously and rejects future
// enqueues. It runs before the pool shuts down, so already-accepted batched
// requests still complete.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	items := b.takeLocked()
	b.mu.Unlock()
	b.flush(items)
}
