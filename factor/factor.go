// Package factor is the public API of the communication-avoiding dense
// factorization library: multithreaded CALU (LU with tournament pivoting)
// and CAQR (QR over TSQR reduction trees) for multicore machines, after
// Donfack, Grigori and Gupta, "Adapting communication-avoiding LU and QR
// factorizations to multicore architectures" (IPDPS 2010).
//
// The entry points are LU and QR. Both factor a column-major Matrix in
// place and return handles exposing solves, least squares, implicit-Q
// application and the raw factors:
//
//	a := factor.NewMatrix(m, n)
//	// ... fill a ...
//	lu, err := factor.LU(a, factor.Options{})        // CALU, defaults
//	lu.Solve(b)                                       // b := A^-1 b
//
//	qr, err := factor.QR(a2, factor.Options{Workers: 8}) // CAQR
//	x := qr.LeastSquares(rhs)                            // min ||A x - rhs||
//
// Options control the paper's tuning knobs: panel block size b, panel
// parallelism Tr, reduction tree shape, worker count and look-ahead. The
// zero Options value picks the paper's defaults (b = min(100, n), Tr =
// Workers = GOMAXPROCS, binary tree, look-ahead on).
//
// A long-lived service should hold an Engine instead of calling LU/QR
// directly: NewEngine starts one persistent worker pool, every
// Engine.LU/Engine.QR call submits its task graph to that shared pool
// (concurrent submissions interleave on the same workers), and Close tears
// it down. The one-shot LU/QR helpers spin up and tear down a private pool
// per call.
//
// Every entry point has a context-bound variant (LUCtx/QRCtx,
// Engine.LUCtx/Engine.QRCtx) for callers that need to cancel a running
// factorization, bound it with a deadline, or shed load: the call returns
// an error wrapping the context's error and never a partial result, while
// concurrent requests on the same engine are unaffected. CloseWithTimeout
// bounds engine shutdown the same way. See doc/CANCELLATION.md for the
// full semantics.
package factor

import (
	"context"
	"runtime"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/mixed"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tslu"
)

// Matrix is a dense column-major matrix of float64, with element (i, j)
// stored at Data[j*Stride+i]. It aliases the internal matrix type, so all
// of its methods (At, Set, View, Clone, norms, ...) are available.
type Matrix = matrix.Dense

// NewMatrix allocates a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.New(r, c) }

// FromColMajor wraps an existing column-major slice without copying.
func FromColMajor(r, c, stride int, data []float64) *Matrix {
	return matrix.FromColMajor(r, c, stride, data)
}

// FromRows builds a matrix from row slices.
func FromRows(rows [][]float64) *Matrix { return matrix.FromRows(rows) }

// Random returns an r x c matrix with deterministic pseudo-random entries
// in [-1, 1), seeded by seed.
func Random(r, c int, seed int64) *Matrix { return matrix.Random(r, c, seed) }

// Tree selects the shape of the panel reduction tree.
type Tree int

// Tree shapes: Binary is communication-optimal in parallel; Flat (height
// one) trades a larger final reduction for fewer synchronization rounds;
// Hybrid (flat groups then binary, after Hadri et al.) sits between.
const (
	Binary Tree = Tree(tslu.Binary)
	Flat   Tree = Tree(tslu.Flat)
	Hybrid Tree = Tree(tslu.Hybrid)
)

// Options are the algorithm's tuning knobs. The zero value selects the
// paper's defaults.
type Options struct {
	// BlockSize is the panel width b; 0 means min(100, n).
	BlockSize int
	// PanelThreads is Tr, the number of block rows in the panel reduction;
	// 0 means Workers.
	PanelThreads int
	// Tree is the reduction tree shape (Binary default).
	Tree Tree
	// Workers is the number of scheduler goroutines; 0 means GOMAXPROCS.
	Workers int
	// NoLookahead disables the look-ahead priority scheme (for study; the
	// paper's configuration keeps it on).
	NoLookahead bool
	// WorkStealing swaps the centralized priority scheduler for a
	// Cilk-style work-stealing one; numerical results are identical.
	WorkStealing bool
	// StructuredTree switches CAQR's tree merges to the structured
	// triangle-on-triangle kernel (faster; same R up to rounding).
	StructuredTree bool
	// GrowthThreshold arms LU's pivot-growth guardrail: a panel whose
	// element growth max|U|/max|A| exceeds it is re-factored with straight
	// partial pivoting (GEPP) and recorded in FallbackPanels. 0 disables
	// the guardrail (or defers to EngineConfig.GrowthThreshold on an
	// engine). QR ignores it.
	GrowthThreshold float64
	// Trace records per-task execution events, retrievable via the result
	// handles' Events fields.
	Trace bool
	// Verify arms algorithm-based fault tolerance: column checksums of the
	// input are carried through the factorization and checked at every panel
	// boundary, so silent data corruption (a flipped bit in a task's output)
	// is detected instead of shipped. A corrupted CALU panel is recomputed
	// once from its pristine source; anything unrecoverable fails with
	// ErrCorrupted, which a retrying engine treats as transient. Overhead is
	// O(mn) checksum work against the O(mn^2) factorization. See
	// doc/ROBUSTNESS.md.
	Verify bool
	// VerifyTolerance scales the checksum comparison: predicted and actual
	// column sums must agree within VerifyTolerance * m * max|A|. 0 means
	// 1e-8 — orders of magnitude above roundoff, orders below any injected
	// fault.
	VerifyTolerance float64
}

func (o Options) internal() core.Options {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tr := o.PanelThreads
	if tr <= 0 {
		tr = workers
	}
	return core.Options{
		BlockSize:       o.BlockSize,
		PanelThreads:    tr,
		Tree:            tslu.Tree(o.Tree),
		Workers:         workers,
		Lookahead:       !o.NoLookahead,
		WorkStealing:    o.WorkStealing,
		StructuredTree:  o.StructuredTree,
		GrowthThreshold: o.GrowthThreshold,
		Trace:           o.Trace,
		Verify:          o.Verify,
		VerifyTolerance: o.VerifyTolerance,
	}
}

// LUFactorization is the result of LU: P*A = L*U with L unit lower
// triangular and U upper triangular, both stored in place in the input
// matrix; the permutation is available through Permute.
type LUFactorization struct {
	res     *core.LUResult
	workers int
}

// ErrSingular is returned by LU when a panel is rank deficient.
var ErrSingular = tslu.ErrSingular

// ErrShape is returned by LU and QR for malformed inputs: a nil or empty
// matrix. Both report it as a wrapped error (test with errors.Is) instead
// of panicking, so a long-lived service can reject bad requests cheaply.
var ErrShape = core.ErrShape

// ErrCorrupted is returned by verified factorizations (Options.Verify or
// EngineConfig.VerifyChecksums) when an ABFT checksum mismatch survives
// local panel recovery. The input was silently corrupted mid-run — a
// transient fault, not a property of the matrix — so the error is
// retryable: a self-healing engine restores the input and refactors, and a
// serving front end maps it to 503 with Retry-After.
var ErrCorrupted = core.ErrCorrupted

// TaskEvent is one traced task execution: which kind of task (P, L, U or S
// in the paper's nomenclature), on which worker, over which wall-clock
// interval (seconds since the factorization started). Recorded only when
// Options.Trace is set.
type TaskEvent struct {
	// Kind is the task class: "P" (panel reduction node), "L" (panel L
	// block), "U" (pivoting + U row) or "S" (trailing update).
	Kind string
	// Label identifies the task within the graph (e.g. "S[2,5]").
	Label string
	// Worker is the index of the pool goroutine that ran the task.
	Worker int
	// Start and End delimit the execution in seconds from the run start.
	Start, End float64
}

// taskEvents converts a scheduler trace into the public TaskEvent form,
// sorted by worker then start time.
func taskEvents(events []sched.Event, g *sched.Graph, workers int) []TaskEvent {
	if len(events) == 0 {
		return nil
	}
	tr := trace.FromSched(events, g, workers)
	out := make([]TaskEvent, len(tr.Spans))
	for i, s := range tr.Spans {
		out[i] = TaskEvent{Kind: s.Kind.String(), Label: s.Label, Worker: s.Worker, Start: s.Start, End: s.End}
	}
	return out
}

// LU computes the communication-avoiding LU factorization with tournament
// pivoting of a (m x n, m >= n), in place. The returned handle exposes
// solves and the permutation; a itself holds L and U.
func LU(a *Matrix, opt Options) (*LUFactorization, error) {
	return LUCtx(context.Background(), a, opt) // calint:ignore ctx-propagation -- documented ctx-free entry point
}

// LUCtx is LU bound to a context: if ctx is cancelled or its deadline
// expires the factorization stops dispatching tasks, drains, and returns an
// error wrapping context.Canceled or context.DeadlineExceeded — never a
// partial result. a is factored in place, so its contents are unspecified
// after a cancelled call.
func LUCtx(ctx context.Context, a *Matrix, opt Options) (*LUFactorization, error) {
	iopt := opt.internal()
	res, err := core.CALUWithPoolCtx(ctx, a, iopt, nil)
	if err != nil {
		return nil, err
	}
	return &LUFactorization{res: res, workers: iopt.Workers}, nil
}

// Factors returns the in-place factor matrix (L below the unit diagonal,
// U on and above).
func (f *LUFactorization) Factors() *Matrix { return f.res.A }

// Permute applies the factorization's row permutation P to b in place.
func (f *LUFactorization) Permute(b *Matrix) { f.res.ApplyPerm(b) }

// Solve solves A*x = rhs for square A, overwriting rhs with x.
func (f *LUFactorization) Solve(rhs *Matrix) { f.res.Solve(rhs) }

// Events returns the per-task execution trace — kind, worker and timing of
// every task — when Options.Trace was set, and nil otherwise.
func (f *LUFactorization) Events() []TaskEvent {
	return taskEvents(f.res.Events, f.res.Graph, f.workers)
}

// FallbackPanels lists the panel iterations the pivot-growth guardrail
// re-factored with GEPP (see Options.GrowthThreshold), in ascending order.
// Empty when the guardrail is off or never tripped.
func (f *LUFactorization) FallbackPanels() []int { return f.res.FallbackPanels }

// RecomputedPanels lists the panel iterations the ABFT gate recomputed from
// pristine source after detecting corruption (see Options.Verify), in
// ascending order. Empty when verification is off or nothing was detected.
func (f *LUFactorization) RecomputedPanels() []int { return f.res.RecomputedPanels }

// QRFactorization is the result of QR: A = Q*R with R upper triangular in
// the input matrix and Q held implicitly (leaf reflectors in the matrix,
// tree reflectors in the handle).
type QRFactorization struct {
	res     *core.QRResult
	workers int
}

// QR computes the communication-avoiding QR factorization of a (m x n,
// m >= n), in place. Malformed inputs are reported as an ErrShape-wrapped
// error.
func QR(a *Matrix, opt Options) (*QRFactorization, error) {
	return QRCtx(context.Background(), a, opt) // calint:ignore ctx-propagation -- documented ctx-free entry point
}

// QRCtx is QR bound to a context, with the same cancellation semantics as
// LUCtx: an error wrapping the context's error, never a partial result.
func QRCtx(ctx context.Context, a *Matrix, opt Options) (*QRFactorization, error) {
	iopt := opt.internal()
	res, err := core.CAQRWithPoolCtx(ctx, a, iopt, nil)
	if err != nil {
		return nil, err
	}
	return &QRFactorization{res: res, workers: iopt.Workers}, nil
}

// R returns a copy of the n x n upper-triangular factor.
func (f *QRFactorization) R() *Matrix { return f.res.R() }

// Q returns the explicit thin m x n orthogonal factor. Prefer ApplyQ /
// ApplyQT, which avoid materializing Q.
func (f *QRFactorization) Q() *Matrix { return f.res.ExplicitQ() }

// ApplyQT overwrites c with Q^T * c.
func (f *QRFactorization) ApplyQT(c *Matrix) { f.res.ApplyQT(c) }

// ApplyQ overwrites c with Q * c.
func (f *QRFactorization) ApplyQ(c *Matrix) { f.res.ApplyQ(c) }

// LeastSquares solves min ||A*x - rhs||_2, returning x (n x p). rhs is
// overwritten with Q^T rhs.
func (f *QRFactorization) LeastSquares(rhs *Matrix) *Matrix {
	return f.res.LeastSquares(rhs)
}

// Events returns the per-task execution trace — kind, worker and timing of
// every task — when Options.Trace was set, and nil otherwise.
func (f *QRFactorization) Events() []TaskEvent {
	return taskEvents(f.res.Events, f.res.Graph, f.workers)
}

// SolveTranspose solves A^T * x = rhs for square A, overwriting rhs.
func (f *LUFactorization) SolveTranspose(rhs *Matrix) { f.res.SolveTranspose(rhs) }

// Condition estimates the reciprocal 1-norm condition number given the
// 1-norm of the original matrix (capture it with NormOne before factoring).
// Returns 0 for a singular factor.
func (f *LUFactorization) Condition(anorm float64) float64 { return f.res.RCond(anorm) }

// SolveRefined solves A*x = rhs with the given number of iterative
// refinement steps; orig must be the original (unfactored) matrix. It
// returns the final correction's max-norm.
func (f *LUFactorization) SolveRefined(orig, rhs *Matrix, iters int) float64 {
	return f.res.SolveRefined(orig, rhs, iters)
}

// Inverse forms A^{-1} from the factorization. Prefer Solve where possible:
// the explicit inverse costs an extra n^3 flops and is less accurate.
func (f *LUFactorization) Inverse() *Matrix { return f.res.Inverse() }

// SolveMixed solves A*x = rhs (single right-hand side) using a float32
// factorization refined to float64 accuracy — roughly twice the kernel
// throughput when it converges (condition number below ~10^7). rhs is
// overwritten with x; the returned count is the number of refinement
// iterations. Fails with an error for ill-conditioned systems, in which
// case use LU + Solve.
func SolveMixed(a, rhs *Matrix, maxIter int) (int, error) {
	res, err := mixed.Solve(a, rhs, maxIter)
	return res.Iterations, err
}

// PermutationVector returns the factorization's row permutation as an
// explicit vector p, where row i of the factored matrix corresponds to row
// p[i] of the original.
func (f *LUFactorization) PermutationVector() []int {
	n := f.res.A.Rows
	lab := matrix.New(n, 1)
	for i := 0; i < n; i++ {
		lab.Set(i, 0, float64(i))
	}
	f.res.ApplyPerm(lab)
	p := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = int(lab.At(i, 0))
	}
	return p
}
