package factor_test

import (
	"errors"
	"sync"
	"testing"

	"repro/factor"
)

// TestEngineConcurrentMixedSubmissions drives one shared engine with
// concurrent LU and QR requests (6 submissions on a 4-worker pool) and
// checks every result bit-identical to the corresponding one-shot call:
// interleaving submissions on shared workers must not change a single bit
// of the factors.
func TestEngineConcurrentMixedSubmissions(t *testing.T) {
	eng := factor.NewEngine(4)
	defer eng.Close()
	opt := factor.Options{BlockSize: 8, PanelThreads: 2}

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(2)
		go func() { // LU request
			defer wg.Done()
			orig := factor.Random(90+7*i, 40, int64(i+1))
			oneShot, shared := orig.Clone(), orig.Clone()
			want, err := factor.LU(oneShot, opt)
			if err != nil {
				t.Errorf("one-shot LU %d: %v", i, err)
				return
			}
			got, err := eng.LU(shared, opt)
			if err != nil {
				t.Errorf("engine LU %d: %v", i, err)
				return
			}
			if !oneShot.Equal(shared) {
				t.Errorf("LU %d: engine factors differ from one-shot", i)
			}
			wp, gp := want.PermutationVector(), got.PermutationVector()
			for r := range wp {
				if wp[r] != gp[r] {
					t.Errorf("LU %d: permutation differs at row %d", i, r)
					return
				}
			}
		}()
		go func() { // QR request
			defer wg.Done()
			orig := factor.Random(100+11*i, 30, int64(100+i))
			oneShot, shared := orig.Clone(), orig.Clone()
			if _, err := factor.QR(oneShot, opt); err != nil {
				t.Errorf("one-shot QR %d: %v", i, err)
				return
			}
			if _, err := eng.QR(shared, opt); err != nil {
				t.Errorf("engine QR %d: %v", i, err)
				return
			}
			if !oneShot.Equal(shared) {
				t.Errorf("QR %d: engine factors differ from one-shot", i)
			}
		}()
	}
	wg.Wait()
}

func TestEngineReuseAcrossManyCalls(t *testing.T) {
	eng := factor.NewEngine(2)
	defer eng.Close()
	for i := 0; i < 10; i++ {
		a := factor.Random(40, 20, int64(i))
		if _, err := eng.LU(a, factor.Options{BlockSize: 5}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestEngineClosed(t *testing.T) {
	eng := factor.NewEngine(2)
	eng.Close()
	eng.Close() // idempotent
	a := factor.Random(20, 10, 1)
	if _, err := eng.LU(a, factor.Options{}); !errors.Is(err, factor.ErrEngineClosed) {
		t.Fatalf("LU on closed engine = %v, want ErrEngineClosed", err)
	}
	if _, err := eng.QR(a, factor.Options{}); !errors.Is(err, factor.ErrEngineClosed) {
		t.Fatalf("QR on closed engine = %v, want ErrEngineClosed", err)
	}
}

func TestEngineWorkersDefault(t *testing.T) {
	eng := factor.NewEngine(0)
	defer eng.Close()
	if eng.Workers() < 1 {
		t.Fatalf("Workers() = %d", eng.Workers())
	}
	eng3 := factor.NewEngine(3)
	defer eng3.Close()
	if eng3.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", eng3.Workers())
	}
}

// TestQRShapeError checks the error contract: malformed inputs come back as
// ErrShape-wrapped errors from both the one-shot and the engine paths, and
// no validation panic escapes the package.
func TestQRShapeError(t *testing.T) {
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("validation panicked: %v", p)
		}
	}()
	if _, err := factor.QR(nil, factor.Options{}); !errors.Is(err, factor.ErrShape) {
		t.Fatalf("QR(nil) = %v, want ErrShape", err)
	}
	empty := &factor.Matrix{}
	if _, err := factor.QR(empty, factor.Options{}); !errors.Is(err, factor.ErrShape) {
		t.Fatalf("QR(empty) = %v, want ErrShape", err)
	}
	if _, err := factor.LU(nil, factor.Options{}); !errors.Is(err, factor.ErrShape) {
		t.Fatalf("LU(nil) = %v, want ErrShape", err)
	}
	eng := factor.NewEngine(1)
	defer eng.Close()
	if _, err := eng.QR(empty, factor.Options{}); !errors.Is(err, factor.ErrShape) {
		t.Fatalf("engine QR(empty) = %v, want ErrShape", err)
	}
	if _, err := eng.LU(nil, factor.Options{}); !errors.Is(err, factor.ErrShape) {
		t.Fatalf("engine LU(nil) = %v, want ErrShape", err)
	}
}

func TestEventsTrace(t *testing.T) {
	a := factor.Random(60, 30, 17)
	lu, err := factor.LU(a, factor.Options{BlockSize: 10, Trace: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	events := lu.Events()
	if len(events) == 0 {
		t.Fatal("trace requested but no events")
	}
	kinds := map[string]bool{}
	for _, e := range events {
		if e.End < e.Start || e.Worker < 0 || e.Worker >= 2 {
			t.Fatalf("bad event %+v", e)
		}
		kinds[e.Kind] = true
	}
	for _, k := range []string{"P", "L", "U", "S"} {
		if !kinds[k] {
			t.Fatalf("no %s tasks in trace: %v", k, kinds)
		}
	}
	// Without Trace the result carries no events.
	b := factor.Random(60, 30, 18)
	qr, err := factor.QR(b, factor.Options{BlockSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if qr.Events() != nil {
		t.Fatal("events without Trace")
	}
}
