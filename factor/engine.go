package factor

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// ErrEngineClosed is returned by Engine.LU and Engine.QR after Close.
var ErrEngineClosed = errors.New("factor: engine is closed")

// ErrOverloaded is returned when admission control sheds a request: the
// engine already has EngineConfig.MaxInFlight factorizations in flight.
// The request was rejected before touching the input matrix, so the caller
// may retry it unchanged after backing off.
var ErrOverloaded = errors.New("factor: engine overloaded")

// ErrStalled is returned when the engine's watchdog detects a stalled
// request: no task on the pool completed for EngineConfig.StallTimeout
// while requests were in flight. Stalls are treated as transient (a wedged
// worker, a pathological schedule) and retried when MaxRetries allows.
var ErrStalled = errors.New("factor: factorization stalled")

// ErrNonFinite is re-exported from core: the input matrix contains a NaN
// or Inf entry. Permanent — never retried.
var ErrNonFinite = core.ErrNonFinite

// ErrCancelled is re-exported from sched: a factorization was cancelled
// mid-run. Errors from the Ctx entry points wrap it alongside the
// context's own error.
var ErrCancelled = sched.ErrCancelled

// TaskInfo describes one task about to execute on the engine's pool, as
// passed to a TaskInterceptor. Alias of the scheduler's type.
type TaskInfo = sched.TaskInfo

// TaskInterceptor runs before every task on the engine's pool; a non-nil
// return fails the task (and its factorization) without running it. It is
// the hook the internal/fault chaos injector plugs into. Production
// engines leave it nil and pay a single nil-check per task.
type TaskInterceptor = sched.Interceptor

// TaskPostInterceptor runs after every task on the engine's pool that
// exposes an output buffer, with write access to that buffer. It is the
// hook the chaos injector's silent-corruption rules plug into (ABFT
// verification must detect whatever it plants). Production engines leave
// it nil.
type TaskPostInterceptor = sched.PostInterceptor

// EngineConfig configures a self-healing engine. The zero value of every
// field is a sensible default: unbounded admission, no retries, no
// watchdog, no growth guardrail, no interceptor.
type EngineConfig struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// MaxInFlight bounds the number of concurrently served requests;
	// requests beyond it fail fast with ErrOverloaded instead of queueing
	// without bound. 0 means unlimited.
	MaxInFlight int
	// MaxRetries is how many times a transiently failed request (injected
	// fault, task panic, watchdog stall) is retried after restoring the
	// input matrix from a snapshot. 0 disables retries — and the snapshot,
	// so the common configuration pays nothing.
	MaxRetries int
	// RetryBackoff is the base delay before the first retry; each further
	// retry doubles it, with up to 50% random jitter added. 0 means 2ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff. 0 means 250ms.
	RetryBackoffMax time.Duration
	// StallTimeout arms the watchdog: if no task on the pool completes for
	// this long while requests are in flight, every in-flight request is
	// cancelled with ErrStalled (and retried, if MaxRetries allows).
	// Detection is pool-wide — progress by any request counts as progress.
	// 0 disables the watchdog.
	StallTimeout time.Duration
	// GrowthThreshold is the default pivot-growth guardrail threshold for
	// LU requests that leave Options.GrowthThreshold zero; see
	// Options.GrowthThreshold. 0 leaves the guardrail off by default.
	GrowthThreshold float64
	// Interceptor, when non-nil, runs before every task on the pool. Used
	// by chaos tests to inject faults; see internal/fault.
	Interceptor TaskInterceptor
	// PostInterceptor, when non-nil, runs after every task on the pool
	// that exposes an output buffer. Used by chaos tests to plant silent
	// data corruption for ABFT verification to catch; see internal/fault.
	PostInterceptor TaskPostInterceptor
	// CacheEntries bounds the content-addressed result cache used by the
	// LUCachedCtx/QRCachedCtx entry points: up to this many factorizations
	// are retained in an LRU keyed by the input's bytes and the numeric
	// options. 0 disables the cache (the cached entry points then always
	// factor). See doc/SERVICE.md.
	CacheEntries int
	// BatchWindow enables request coalescing: eligible factorizations
	// (m >= n, both dimensions <= BatchMaxDim, no Trace) arriving within
	// this window are merged into a single pool submission, so many small
	// requests keep the workers saturated instead of trickling in one tiny
	// graph at a time. 0 disables coalescing. See doc/SERVICE.md.
	BatchWindow time.Duration
	// BatchMaxRequests flushes a coalescing window early once this many
	// requests are pending. 0 means 16.
	BatchMaxRequests int
	// BatchMaxDim bounds coalescing eligibility: only matrices with
	// Rows <= BatchMaxDim and Cols <= BatchMaxDim ride a batch (large
	// factorizations saturate the pool on their own and would only delay
	// the batch). 0 means 256.
	BatchMaxDim int
	// MetricsNamespace prefixes the engine's registered metric names
	// (e.g. "facsvc_engine" → facsvc_engine_retries_total). Empty means
	// "engine".
	MetricsNamespace string
	// VerifyChecksums arms ABFT checksum verification (Options.Verify) for
	// every request on this engine, whether or not the request asked for it.
	// Detections and recoveries are counted in Stats and /metrics; an
	// unrecoverable mismatch fails the attempt with ErrCorrupted, which is
	// transient and retried when MaxRetries allows. See doc/ROBUSTNESS.md.
	VerifyChecksums bool
	// MaxPanelRecomputes bounds how many corrupted CALU panels a single
	// verified factorization may recompute locally before escalating to
	// ErrCorrupted. 0 means 2; negative disables local recovery (every
	// detection escalates).
	MaxPanelRecomputes int
}

// Stats is a snapshot of an engine's self-healing counters.
type Stats struct {
	// Retries counts factorization attempts beyond each request's first.
	Retries int64
	// Shed counts requests rejected with ErrOverloaded.
	Shed int64
	// Stalled counts requests the watchdog cancelled with ErrStalled
	// (including ones that subsequently succeeded on retry).
	Stalled int64
	// InFlight is the number of requests currently admitted.
	InFlight int64
	// CacheHits counts cached-entry-point requests served without a new
	// factorization (including requests that joined an in-flight identical
	// one); CacheMisses counts the ones that factored; CacheEvictions
	// counts LRU entries dropped to stay within CacheEntries.
	CacheHits, CacheMisses, CacheEvictions int64
	// BatchedRequests counts factorization attempts served through a
	// coalesced submission; BatchFlushes counts the merged submissions
	// issued for them.
	BatchedRequests, BatchFlushes int64
	// PoolTasks is the number of tasks the engine's pool has accounted for
	// since it started. It is monotonic: a request served entirely from
	// the cache leaves it unchanged.
	PoolTasks int64
	// CorruptionsDetected counts ABFT checksum mismatches flagged by
	// verified factorizations; PanelsRecomputed counts the ones repaired in
	// place by a panel recompute; VerifyFailRetries counts full-request
	// retries taken because an attempt failed with ErrCorrupted.
	CorruptionsDetected, PanelsRecomputed, VerifyFailRetries int64
	// CacheIntegrityEvictions counts result-cache entries evicted because
	// their stored checksum no longer matched the resident factors (the
	// request then refactors as a miss).
	CacheIntegrityEvictions int64
}

// Engine is a persistent factorization service: one fixed pool of worker
// goroutines, started by NewEngine and reused by every LU and QR call until
// Close. Calls may be issued concurrently from any number of goroutines;
// each factorization is an independent submission to the shared pool, with
// its own priority space, trace and error capture, so a failure (or a
// panicking task) in one request never affects the others or the pool.
//
// Compared with the package-level LU/QR — which build and tear down a
// private pool per call — an Engine avoids the per-request goroutine spawn
// and teardown, which matters when factoring many small matrices.
//
// An engine built with NewEngineWithConfig is additionally self-healing:
// admission control sheds excess load (ErrOverloaded), transient failures
// are retried with exponential backoff from a snapshot of the input, and a
// watchdog converts silent stalls into typed ErrStalled failures.
type Engine struct {
	pool    *sched.Pool
	workers int
	cfg     EngineConfig
	sem     chan struct{} // admission slots; nil when unlimited

	batch *batcher     // nil when coalescing is off
	cache *resultCache // nil when the result cache is off

	// met backs every Stats() field with a registered obs metric, shared
	// with the Prometheus exposition (Engine.Registry).
	met *engineMetrics

	watchMu  sync.Mutex
	watched  map[int64]context.CancelCauseFunc
	watchSeq int64

	stopWatch chan struct{} // nil when the watchdog is off
	watchDone chan struct{}
	stopOnce  sync.Once
}

// NewEngine starts an engine with the given number of worker goroutines
// (<= 0 means GOMAXPROCS) and no self-healing behaviors — the historical
// configuration. The caller owns the engine and must Close it to release
// the workers.
func NewEngine(workers int) *Engine {
	return NewEngineWithConfig(EngineConfig{Workers: workers})
}

// NewEngineWithConfig starts an engine with the full robustness
// configuration. The caller owns the engine and must Close it.
func NewEngineWithConfig(cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	if cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 250 * time.Millisecond
	}
	if cfg.BatchWindow > 0 {
		if cfg.BatchMaxRequests <= 0 {
			cfg.BatchMaxRequests = 16
		}
		if cfg.BatchMaxDim <= 0 {
			cfg.BatchMaxDim = 256
		}
	}
	if cfg.MetricsNamespace == "" {
		cfg.MetricsNamespace = "engine"
	}
	e := &Engine{
		pool:    sched.NewPool(cfg.Workers),
		workers: cfg.Workers,
		cfg:     cfg,
		watched: make(map[int64]context.CancelCauseFunc),
	}
	e.met = newEngineMetrics(cfg.MetricsNamespace, e.pool)
	if cfg.MaxInFlight > 0 {
		e.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.CacheEntries > 0 {
		e.cache = newResultCache(cfg.CacheEntries, e.met)
	}
	if cfg.BatchWindow > 0 {
		e.batch = newBatcher(e, cfg.BatchWindow, cfg.BatchMaxRequests)
	}
	if cfg.Interceptor != nil {
		e.pool.SetInterceptor(cfg.Interceptor)
	}
	if cfg.PostInterceptor != nil {
		e.pool.SetPostInterceptor(cfg.PostInterceptor)
	}
	if cfg.StallTimeout > 0 {
		e.stopWatch = make(chan struct{})
		e.watchDone = make(chan struct{})
		go func() {
			defer func() {
				// The watchdog must never take the process down; a panic
				// here only disables stall detection.
				_ = recover()
				close(e.watchDone)
			}()
			e.watchLoop()
		}()
	}
	return e
}

// Workers returns the size of the engine's worker pool.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the self-healing, cache and batching
// counters. Every field reads the same registered metric the Prometheus
// exposition (Registry) serves — one storage, two views.
func (e *Engine) Stats() Stats {
	return Stats{
		Retries:         e.met.retries.Value(),
		Shed:            e.met.shed.Value(),
		Stalled:         e.met.stalls.Value(),
		InFlight:        e.met.inFlight.Value(),
		BatchedRequests: e.met.batched.Value(),
		CacheHits:       e.met.cacheHits.Value(),
		CacheMisses:     e.met.cacheMisses.Value(),
		CacheEvictions:  e.met.cacheEvictions.Value(),
		BatchFlushes:    e.met.batchFlushes.Value(),
		PoolTasks:       int64(e.pool.CompletedTasks()),

		CorruptionsDetected:     e.met.corruptions.Value(),
		PanelsRecomputed:        e.met.panelRecomputes.Value(),
		VerifyFailRetries:       e.met.verifyFailRetries.Value(),
		CacheIntegrityEvictions: e.met.integrityEvictions.Value(),
	}
}

// Registry exposes the engine's metric registry for exposition (cmd/facsvc
// gathers it into /metrics). Callers must not register further metrics on
// it.
func (e *Engine) Registry() *obs.Registry { return e.met.reg }

// PoolMetrics snapshots the engine's scheduler-pool instrumentation:
// per-worker busy time, steal counters, queue depth high-water marks and
// per-kind task latency. See sched.PoolMetrics.
func (e *Engine) PoolMetrics() sched.PoolMetrics { return e.pool.Metrics() }

// Close shuts the engine down: in-flight factorizations complete, the
// watchdog and the workers exit, and subsequent LU/QR calls fail with
// ErrEngineClosed. A pending coalescing window is flushed first, so batched
// requests already accepted still complete. Close is idempotent.
func (e *Engine) Close() {
	e.stopWatchdog()
	if e.batch != nil {
		e.batch.close()
	}
	e.pool.Close()
}

// CloseWithTimeout shuts the engine down like Close but bounds the wait: if
// in-flight factorizations have not drained within d, their still-queued
// tasks are cancelled — each affected LU/QR call returns an error wrapping
// context.DeadlineExceeded instead of blocking forever — and the workers
// exit once the kernels already executing finish. It returns nil on a clean
// drain and an error wrapping context.DeadlineExceeded when it had to
// cancel. Idempotent, like Close.
func (e *Engine) CloseWithTimeout(d time.Duration) error {
	e.stopWatchdog()
	if e.batch != nil {
		e.batch.close()
	}
	return e.pool.CloseWithTimeout(d)
}

// stopWatchdog stops the watchdog goroutine and waits for it to exit.
func (e *Engine) stopWatchdog() {
	if e.stopWatch == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.stopWatch) })
	<-e.watchDone
}

// watchLoop is the stall watchdog: it polls the pool's completed-task
// counter and, when it freezes for StallTimeout with requests registered,
// cancels every registered request with ErrStalled as the cause.
func (e *Engine) watchLoop() {
	interval := e.cfg.StallTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	last := e.pool.CompletedTasks()
	lastChange := time.Now()
	for {
		select {
		case <-e.stopWatch:
			return
		case <-ticker.C:
			cur := e.pool.CompletedTasks()
			if cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			e.watchMu.Lock()
			idle := len(e.watched) == 0
			e.watchMu.Unlock()
			if idle {
				// Nothing registered: a frozen counter means an idle pool,
				// not a stall.
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) >= e.cfg.StallTimeout {
				e.cancelWatched()
				lastChange = time.Now()
			}
		}
	}
}

// cancelWatched cancels every registered request with ErrStalled.
func (e *Engine) cancelWatched() {
	e.watchMu.Lock()
	defer e.watchMu.Unlock()
	for _, cancel := range e.watched {
		cancel(ErrStalled)
	}
}

// watch derives the context one factorization attempt runs under. With the
// watchdog armed it is cancellable with a cause; the returned release must
// be called when the attempt finishes, from the serving goroutine.
func (e *Engine) watch(ctx context.Context) (context.Context, func()) {
	if e.stopWatch == nil {
		return ctx, func() {}
	}
	actx, cancel := context.WithCancelCause(ctx)
	e.watchMu.Lock()
	e.watchSeq++
	id := e.watchSeq
	e.watched[id] = cancel
	e.watchMu.Unlock()
	return actx, func() {
		e.watchMu.Lock()
		delete(e.watched, id)
		e.watchMu.Unlock()
		cancel(nil)
	}
}

// admit claims an in-flight slot, shedding the request when none is free.
func (e *Engine) admit() error {
	if e.sem == nil {
		return nil
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
		e.met.shed.Inc()
		return fmt.Errorf("%w: %d requests in flight", ErrOverloaded, e.cfg.MaxInFlight)
	}
}

// release returns an admission slot.
func (e *Engine) release() {
	if e.sem != nil {
		<-e.sem
	}
}

// retryable classifies a failed attempt. Input errors (shape, singularity,
// non-finite entries), engine shutdown and the caller's own cancellation
// are permanent; everything else — injected faults, task panics, watchdog
// stalls — is transient and worth a retry.
func retryable(err error) bool {
	switch {
	case errors.Is(err, ErrShape),
		errors.Is(err, ErrSingular),
		errors.Is(err, ErrNonFinite),
		errors.Is(err, ErrEngineClosed),
		errors.Is(err, sched.ErrPoolClosed):
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// backoff sleeps for the attempt's exponential backoff (with jitter),
// returning early with ctx's error if the caller cancels meanwhile.
func (e *Engine) backoff(ctx context.Context, attempt int) error {
	d := backoffDelay(e.cfg.RetryBackoff, e.cfg.RetryBackoffMax, attempt)
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// backoffDelay computes one retry's sleep: exponential in the attempt with
// up to 50% random jitter, clamped to max AFTER the jitter is added —
// RetryBackoffMax is a promise to the caller (a serving front end derives
// Retry-After from it), so no retry may ever sleep past it.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	if d > max {
		d = max
	}
	return d
}

// serve runs one factorization request through the self-healing path:
// admission control, per-attempt watchdog registration, snapshot/restore
// of the in-place input across retries, and stall classification. run
// performs one attempt under the context it is given; a is the in-place
// input to snapshot (nil skips snapshotting).
func (e *Engine) serve(ctx context.Context, a *Matrix, run func(context.Context) error) error {
	// The caller's context is checked before admission: a request that was
	// already cancelled must report its own cancellation, not consume an
	// admission decision — returning ErrOverloaded (and bumping the Shed
	// counter) for a request the caller abandoned would tell a retrying
	// client to back off for capacity the engine never lacked.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w before admission: %w", ErrCancelled, err)
	}
	if err := e.admit(); err != nil {
		return err
	}
	defer e.release()
	e.met.inFlight.Add(1)
	defer e.met.inFlight.Add(-1)

	var snap *Matrix
	if e.cfg.MaxRetries > 0 && a != nil {
		// Factorizations destroy their input, so retrying needs the
		// original back. The snapshot costs one copy of a; engines with
		// MaxRetries == 0 never pay it.
		snap = a.Clone()
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if snap != nil {
				a.CopyFrom(snap)
			}
			e.met.retries.Inc()
		}
		actx, release := e.watch(ctx)
		err := run(actx)
		stalled := err != nil && errors.Is(context.Cause(actx), ErrStalled)
		release()
		if err == nil {
			return nil
		}
		if stalled {
			e.met.stalls.Inc()
			// Substitute the stall sentinel for the raw cancellation error:
			// the attempt died because the watchdog cancelled it, and — as
			// a self-inflicted cancellation — it must stay retryable, which
			// the wrapped context.Canceled would not be.
			err = fmt.Errorf("%w: no task completed for %v (%v)", ErrStalled, e.cfg.StallTimeout, err)
		}
		err = mapErr(err)
		if attempt >= e.cfg.MaxRetries || !retryable(err) || ctx.Err() != nil {
			return err
		}
		if errors.Is(err, ErrCorrupted) {
			// The attempt died on an unrecovered checksum mismatch; the
			// retry about to happen is the ABFT escalation ladder's last
			// rung, counted separately from generic retries.
			e.met.verifyFailRetries.Inc()
		}
		if werr := e.backoff(ctx, attempt); werr != nil {
			return err
		}
	}
}

// engineOptions pins the scheduling knobs the engine owns: the worker
// count is the pool's, not the caller's, the engine's default growth
// threshold applies when the request does not set its own, and
// VerifyChecksums arms ABFT verification regardless of the request. The
// detection callbacks feed the engine's registered metrics; they are
// ignored by the cache key, which hashes only the numeric knobs.
func (e *Engine) engineOptions(opt Options) core.Options {
	opt.Workers = e.workers
	if opt.GrowthThreshold == 0 {
		opt.GrowthThreshold = e.cfg.GrowthThreshold
	}
	iopt := opt.internal()
	if e.cfg.VerifyChecksums {
		iopt.Verify = true
	}
	if iopt.Verify {
		iopt.MaxPanelRecomputes = e.cfg.MaxPanelRecomputes
		iopt.OnCorruption = func(int) { e.met.corruptions.Inc() }
		iopt.OnPanelRecompute = func(int) { e.met.panelRecomputes.Inc() }
	}
	return iopt
}

// mapErr rewrites internal sentinels into the engine's public vocabulary:
// a closed pool becomes ErrEngineClosed. Typed errors that already belong
// to the public API (ErrOverloaded, ErrStalled, ErrNonFinite, wrapped
// cancellations) pass through unchanged.
func mapErr(err error) error {
	if errors.Is(err, sched.ErrPoolClosed) {
		return ErrEngineClosed
	}
	return err
}

// LU computes the communication-avoiding LU factorization of a in place on
// the engine's shared pool. Semantics and results are identical to the
// package-level LU with Options.Workers set to the engine's worker count,
// plus the engine's self-healing behaviors (admission control, retries,
// watchdog) when configured.
func (e *Engine) LU(a *Matrix, opt Options) (*LUFactorization, error) {
	return e.LUCtx(context.Background(), a, opt) // calint:ignore ctx-propagation -- documented ctx-free entry point
}

// QR computes the communication-avoiding QR factorization of a in place on
// the engine's shared pool. Semantics and results are identical to the
// package-level QR with Options.Workers set to the engine's worker count,
// plus the engine's self-healing behaviors when configured.
func (e *Engine) QR(a *Matrix, opt Options) (*QRFactorization, error) {
	return e.QRCtx(context.Background(), a, opt) // calint:ignore ctx-propagation -- documented ctx-free entry point
}

// LUCtx is Engine.LU bound to a context: if ctx is cancelled or its
// deadline expires — before submission or mid-factorization — the call
// returns an error wrapping context.Canceled or context.DeadlineExceeded
// and never a partial result. Kernels already executing finish; everything
// still queued is drained unrun, the engine's pool stays fully usable, and
// concurrent submissions are unaffected. Note that a is factored in place,
// so its contents are unspecified after a cancelled call (a retrying
// engine restores it between attempts, but not after the final failure).
func (e *Engine) LUCtx(ctx context.Context, a *Matrix, opt Options) (*LUFactorization, error) {
	start := time.Now()
	if e.batchEligible(a, opt) {
		f, err := e.luBatched(ctx, a, opt)
		if err == nil {
			e.met.requestSeconds.With("lu").Observe(time.Since(start).Seconds())
		}
		return f, err
	}
	var res *core.LUResult
	err := e.serve(ctx, a, func(actx context.Context) error {
		var rerr error
		res, rerr = core.CALUWithPoolCtx(actx, a, e.engineOptions(opt), e.pool)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	e.met.requestSeconds.With("lu").Observe(time.Since(start).Seconds())
	return &LUFactorization{res: res, workers: e.workers}, nil
}

// batchEligible reports whether a request rides the coalescing path: the
// batcher is on, the matrix is small enough that sharing a submission
// helps, tall-or-square (the wide case post-processes sequentially), and
// untraced (a merged submission's trace cannot be attributed per request).
func (e *Engine) batchEligible(a *Matrix, opt Options) bool {
	return e.batch != nil && a != nil &&
		a.Rows > 0 && a.Cols > 0 && a.Rows >= a.Cols &&
		a.Rows <= e.cfg.BatchMaxDim && a.Cols <= e.cfg.BatchMaxDim &&
		!opt.Trace
}

// QRCtx is Engine.QR bound to a context, with the same cancellation
// semantics as Engine.LUCtx.
func (e *Engine) QRCtx(ctx context.Context, a *Matrix, opt Options) (*QRFactorization, error) {
	start := time.Now()
	if e.batchEligible(a, opt) {
		f, err := e.qrBatched(ctx, a, opt)
		if err == nil {
			e.met.requestSeconds.With("qr").Observe(time.Since(start).Seconds())
		}
		return f, err
	}
	var res *core.QRResult
	err := e.serve(ctx, a, func(actx context.Context) error {
		var rerr error
		res, rerr = core.CAQRWithPoolCtx(actx, a, e.engineOptions(opt), e.pool)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	e.met.requestSeconds.With("qr").Observe(time.Since(start).Seconds())
	return &QRFactorization{res: res, workers: e.workers}, nil
}

// luBatched serves one LU request through the coalescing path: each attempt
// prepares a fresh clone of a (a merged graph is consumed by its run, so a
// retry can never reuse it), rides a shared submission, and copies the
// factors back into a only on success — so the caller's matrix is intact
// after any failure, and serve needs no snapshot (nil).
func (e *Engine) luBatched(ctx context.Context, a *Matrix, opt Options) (*LUFactorization, error) {
	var res *core.LUResult
	err := e.serve(ctx, nil, func(actx context.Context) error {
		clone := a.Clone()
		prep, err := core.PrepareCALU(clone, e.engineOptions(opt))
		if err != nil {
			return err
		}
		e.met.batched.Inc()
		w := &luPrep{p: prep}
		if err := e.batch.do(actx, w); err != nil {
			return err
		}
		a.CopyFrom(clone)
		res = w.res
		res.A = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &LUFactorization{res: res, workers: e.workers}, nil
}

// qrBatched is the QR analogue of luBatched. The result's Panels keep
// viewing the factored clone (content-identical to a after the copy-back);
// A points at the caller's matrix.
func (e *Engine) qrBatched(ctx context.Context, a *Matrix, opt Options) (*QRFactorization, error) {
	var res *core.QRResult
	err := e.serve(ctx, nil, func(actx context.Context) error {
		clone := a.Clone()
		prep, err := core.PrepareCAQR(clone, e.engineOptions(opt))
		if err != nil {
			return err
		}
		e.met.batched.Inc()
		w := &qrPrep{p: prep}
		if err := e.batch.do(actx, w); err != nil {
			return err
		}
		a.CopyFrom(clone)
		res = w.res
		res.A = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &QRFactorization{res: res, workers: e.workers}, nil
}
