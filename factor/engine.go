package factor

import (
	"context"
	"errors"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// ErrEngineClosed is returned by Engine.LU and Engine.QR after Close.
var ErrEngineClosed = errors.New("factor: engine is closed")

// Engine is a persistent factorization service: one fixed pool of worker
// goroutines, started by NewEngine and reused by every LU and QR call until
// Close. Calls may be issued concurrently from any number of goroutines;
// each factorization is an independent submission to the shared pool, with
// its own priority space, trace and error capture, so a failure (or a
// panicking task) in one request never affects the others or the pool.
//
// Compared with the package-level LU/QR — which build and tear down a
// private pool per call — an Engine avoids the per-request goroutine spawn
// and teardown, which matters when factoring many small matrices.
type Engine struct {
	pool    *sched.Pool
	workers int
}

// NewEngine starts an engine with the given number of worker goroutines
// (<= 0 means GOMAXPROCS). The caller owns the engine and must Close it to
// release the workers.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{pool: sched.NewPool(workers), workers: workers}
}

// Workers returns the size of the engine's worker pool.
func (e *Engine) Workers() int { return e.workers }

// Close shuts the engine down: in-flight factorizations complete, the
// workers exit, and subsequent LU/QR calls fail with ErrEngineClosed.
// Close is idempotent.
func (e *Engine) Close() { e.pool.Close() }

// CloseWithTimeout shuts the engine down like Close but bounds the wait: if
// in-flight factorizations have not drained within d, their still-queued
// tasks are cancelled — each affected LU/QR call returns an error wrapping
// context.DeadlineExceeded instead of blocking forever — and the workers
// exit once the kernels already executing finish. It returns nil on a clean
// drain and an error wrapping context.DeadlineExceeded when it had to
// cancel. Idempotent, like Close.
func (e *Engine) CloseWithTimeout(d time.Duration) error {
	return e.pool.CloseWithTimeout(d)
}

// engineOptions pins the scheduling knobs the engine owns: the worker
// count is the pool's, not the caller's.
func (e *Engine) engineOptions(opt Options) core.Options {
	opt.Workers = e.workers
	return opt.internal()
}

// mapErr rewrites the pool-closed error into the engine's own sentinel.
func mapErr(err error) error {
	if errors.Is(err, sched.ErrPoolClosed) {
		return ErrEngineClosed
	}
	return err
}

// LU computes the communication-avoiding LU factorization of a in place on
// the engine's shared pool. Semantics and results are identical to the
// package-level LU with Options.Workers set to the engine's worker count.
func (e *Engine) LU(a *Matrix, opt Options) (*LUFactorization, error) {
	res, err := core.CALUWithPool(a, e.engineOptions(opt), e.pool)
	if err != nil {
		return nil, mapErr(err)
	}
	return &LUFactorization{res: res, workers: e.workers}, nil
}

// QR computes the communication-avoiding QR factorization of a in place on
// the engine's shared pool. Semantics and results are identical to the
// package-level QR with Options.Workers set to the engine's worker count.
func (e *Engine) QR(a *Matrix, opt Options) (*QRFactorization, error) {
	res, err := core.CAQRWithPool(a, e.engineOptions(opt), e.pool)
	if err != nil {
		return nil, mapErr(err)
	}
	return &QRFactorization{res: res, workers: e.workers}, nil
}

// LUCtx is Engine.LU bound to a context: if ctx is cancelled or its
// deadline expires — before submission or mid-factorization — the call
// returns an error wrapping context.Canceled or context.DeadlineExceeded
// and never a partial result. Kernels already executing finish; everything
// still queued is drained unrun, the engine's pool stays fully usable, and
// concurrent submissions are unaffected. Note that a is factored in place,
// so its contents are unspecified after a cancelled call.
func (e *Engine) LUCtx(ctx context.Context, a *Matrix, opt Options) (*LUFactorization, error) {
	res, err := core.CALUWithPoolCtx(ctx, a, e.engineOptions(opt), e.pool)
	if err != nil {
		return nil, mapErr(err)
	}
	return &LUFactorization{res: res, workers: e.workers}, nil
}

// QRCtx is Engine.QR bound to a context, with the same cancellation
// semantics as Engine.LUCtx.
func (e *Engine) QRCtx(ctx context.Context, a *Matrix, opt Options) (*QRFactorization, error) {
	res, err := core.CAQRWithPoolCtx(ctx, a, e.engineOptions(opt), e.pool)
	if err != nil {
		return nil, mapErr(err)
	}
	return &QRFactorization{res: res, workers: e.workers}, nil
}
