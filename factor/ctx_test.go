package factor_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/factor"
)

func TestCtxPreCancelledNeverPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	a := factor.Random(80, 40, 1)
	if lu, err := factor.LUCtx(ctx, a, factor.Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("LUCtx = %v, want context.Canceled", err)
	} else if lu != nil {
		t.Fatal("LUCtx returned a partial result with an error")
	}
	if qr, err := factor.QRCtx(ctx, a, factor.Options{Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("QRCtx = %v, want context.Canceled", err)
	} else if qr != nil {
		t.Fatal("QRCtx returned a partial result with an error")
	}

	eng := factor.NewEngine(2)
	defer eng.Close()
	if lu, err := eng.LUCtx(ctx, a, factor.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Engine.LUCtx = %v, want context.Canceled", err)
	} else if lu != nil {
		t.Fatal("Engine.LUCtx returned a partial result with an error")
	}
	if qr, err := eng.QRCtx(ctx, a, factor.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Engine.QRCtx = %v, want context.Canceled", err)
	} else if qr != nil {
		t.Fatal("Engine.QRCtx returned a partial result with an error")
	}
}

func TestEngineCtxDeadlineExpired(t *testing.T) {
	eng := factor.NewEngine(2)
	defer eng.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	if _, err := eng.LUCtx(ctx, factor.Random(60, 30, 2), factor.Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Engine.LUCtx = %v, want context.DeadlineExceeded", err)
	}
}

// TestEngineCancelOneOfManyConcurrent is the -race acceptance stress test:
// a cancelled submission must return a wrapped context error (never a
// partial result), while a concurrent uncancelled submission on the same
// pool completes bit-identically to a one-shot run.
func TestEngineCancelOneOfManyConcurrent(t *testing.T) {
	eng := factor.NewEngine(4)
	defer eng.Close()
	opt := factor.Options{BlockSize: 8, PanelThreads: 2}

	for round := 0; round < 4; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup

		wg.Add(1)
		go func() { // victim: cancelled mid-run (or rejected, if cancel wins the race)
			defer wg.Done()
			victim := factor.Random(300, 120, int64(round))
			lu, err := eng.LUCtx(ctx, victim, opt)
			if err == nil {
				// The factorization legitimately finished before the cancel
				// landed; the result must then be fully valid.
				if lu == nil || lu.Factors() == nil {
					t.Error("nil result without error")
				}
				return
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled LUCtx = %v, want context.Canceled", err)
			}
			if lu != nil {
				t.Error("cancelled LUCtx returned a partial result")
			}
		}()

		wg.Add(1)
		go func() { // healthy: must be unaffected by the neighbour's cancel
			defer wg.Done()
			orig := factor.Random(150, 60, int64(100+round))
			oneShot, shared := orig.Clone(), orig.Clone()
			if _, err := factor.LU(oneShot, opt); err != nil {
				t.Errorf("one-shot LU: %v", err)
				return
			}
			if _, err := eng.LU(shared, opt); err != nil {
				t.Errorf("healthy engine LU: %v", err)
				return
			}
			if !oneShot.Equal(shared) {
				t.Error("healthy submission's factors differ from one-shot")
			}
		}()

		time.Sleep(time.Duration(round) * time.Millisecond)
		cancel()
		wg.Wait()
	}
}

func TestEngineCloseWithTimeout(t *testing.T) {
	// Clean path: nothing in flight, CloseWithTimeout returns nil.
	eng := factor.NewEngine(2)
	if _, err := eng.LU(factor.Random(40, 20, 1), factor.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.CloseWithTimeout(time.Second); err != nil {
		t.Fatalf("idle CloseWithTimeout = %v, want nil", err)
	}
	if _, err := eng.LU(factor.Random(40, 20, 2), factor.Options{}); !errors.Is(err, factor.ErrEngineClosed) {
		t.Fatalf("LU after CloseWithTimeout = %v, want ErrEngineClosed", err)
	}

	// Cancel path: a large in-flight factorization cannot drain within the
	// timeout, so it must come back with a wrapped DeadlineExceeded (or, if
	// this machine is fast enough to finish first, a clean close).
	eng2 := factor.NewEngine(2)
	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		close(started)
		_, err := eng2.LU(factor.Random(1200, 600, 3), factor.Options{BlockSize: 32})
		result <- err
	}()
	<-started
	time.Sleep(2 * time.Millisecond) // let the submission reach the pool
	closeErr := eng2.CloseWithTimeout(time.Millisecond)
	luErr := <-result
	if closeErr == nil {
		// Clean drain: the LU either finished first, or had not yet
		// submitted when the pool closed and was rejected outright.
		if luErr != nil && !errors.Is(luErr, factor.ErrEngineClosed) {
			t.Fatalf("clean close but in-flight LU failed: %v", luErr)
		}
	} else {
		if !errors.Is(closeErr, context.DeadlineExceeded) {
			t.Fatalf("CloseWithTimeout = %v, want context.DeadlineExceeded", closeErr)
		}
		if luErr != nil && !errors.Is(luErr, context.DeadlineExceeded) && !errors.Is(luErr, factor.ErrEngineClosed) {
			t.Fatalf("in-flight LU after timed-out close = %v, want DeadlineExceeded or ErrEngineClosed", luErr)
		}
	}
}
