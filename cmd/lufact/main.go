// Command lufact factors a random test matrix with a chosen LU algorithm,
// times it, and verifies the result, exercising every LU path in the
// repository from the command line.
//
// Usage:
//
//	lufact -m 4000 -n 400 -alg calu -tr 8 -workers 8
//	lufact -m 1000 -n 1000 -alg tiled -tile 128
//	lufact -m 2000 -n 200 -alg getrf        # blocked GEPP baseline
//	lufact -m 2000 -n 200 -alg getf2        # BLAS-2 baseline
//
// Robustness knobs (calu only):
//
//	-growth-threshold 100   arm the pivot-growth guardrail: panels whose
//	                        element growth exceeds the threshold are
//	                        re-factored with GEPP and counted in the
//	                        degradation report
//	-chaos-seed 15          inject deterministic faults (task panics and
//	                        spurious errors) through the self-healing
//	                        engine; the run must still produce a correct
//	                        factorization, healed by retries
//
// With either knob set, the calu path runs on a factor.Engine and prints a
// one-line degradation report (fallback panels, retries, shed, stalls).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/factor"
	"repro/internal/baseline"
	"repro/internal/blas"
	"repro/internal/fault"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/stability"
	"repro/internal/tiled"
	"repro/internal/tslu"
)

func main() {
	var (
		m       = flag.Int("m", 2000, "rows")
		n       = flag.Int("n", 200, "columns")
		alg     = flag.String("alg", "calu", "calu | tslu | getrf | getf2 | pgetrf | tiled")
		b       = flag.Int("b", 100, "panel block size (calu)")
		tr      = flag.Int("tr", 4, "panel parallelism Tr (calu, tslu)")
		workers = flag.Int("workers", 4, "worker goroutines")
		tile    = flag.Int("tile", 128, "tile size (tiled)")
		flat    = flag.Bool("flat", false, "flat reduction tree (calu, tslu)")
		seed    = flag.Int64("seed", 1, "matrix seed")
		growth  = flag.Float64("growth-threshold", 0, "pivot-growth guardrail threshold; panels above it re-factor with GEPP (calu; 0 = off)")
		chaos   = flag.Int64("chaos-seed", 0, "inject deterministic faults with this seed through the self-healing engine (calu; 0 = off)")
		crit    = flag.Bool("critical-path", false, "trace the run and report the longest dependency chain (calu)")
	)
	flag.Parse()
	if *crit && *alg != "calu" {
		fmt.Fprintln(os.Stderr, "-critical-path requires -alg calu (the scheduled path)")
		os.Exit(2)
	}

	orig := matrix.Random(*m, *n, *seed)
	a := orig.Clone()
	tree := tslu.Binary
	if *flat {
		tree = tslu.Flat
	}

	var report stability.LUReport
	start := time.Now()
	switch *alg {
	case "calu":
		ftree := factor.Binary
		if *flat {
			ftree = factor.Flat
		}
		cfg := factor.EngineConfig{Workers: *workers, GrowthThreshold: *growth}
		var inj *fault.Injector
		if *chaos != 0 {
			inj = fault.New(*chaos,
				fault.Rule{Kind: fault.Panic, Rate: 0.01, Count: 2},
				fault.Rule{Kind: fault.Error, Rate: 0.01, Count: 2},
			)
			cfg.Interceptor = inj.Intercept
			// Selection is deterministic by task label, so the same tasks
			// trip on every attempt until the rules' budgets (2 panics + 2
			// errors) are spent; the retry allowance must cover all four.
			cfg.MaxRetries = 5
		}
		eng := factor.NewEngineWithConfig(cfg)
		defer eng.Close()
		opt := factor.Options{BlockSize: *b, PanelThreads: *tr, Tree: ftree, Trace: *crit}
		lu, err := eng.LU(a, opt)
		fail(err)
		elapsedReport(start, *m, *n)
		pa := orig.Clone()
		lu.Permute(pa)
		report = verify(a, pa, orig)
		st := eng.Stats()
		fmt.Printf("degradation:  fallback-panels=%d retries=%d shed=%d stalled=%d\n",
			len(lu.FallbackPanels()), st.Retries, st.Shed, st.Stalled)
		if inj != nil {
			fmt.Printf("chaos:        injected panics=%d errors=%d\n",
				inj.Injected(fault.Panic), inj.Injected(fault.Error))
		}
		if *crit {
			cp, err := lu.CriticalPath()
			fail(err)
			cp.Report(os.Stdout)
		}
	case "tslu":
		sw, err := tslu.Factor(a, *tr, tree)
		fail(err)
		elapsedReport(start, *m, *n)
		pa := orig.Clone()
		tslu.ApplyPivots(pa, sw, 0)
		report = verify(a, pa, orig)
	case "getrf":
		ipiv := make([]int, min(*m, *n))
		fail(lapack.GETRF(a, ipiv, *b))
		elapsedReport(start, *m, *n)
		pa := orig.Clone()
		lapack.LASWP(pa, ipiv, 0, len(ipiv))
		report = verify(a, pa, orig)
	case "pgetrf":
		ipiv := make([]int, min(*m, *n))
		fail(lapack.PGETRF(a, ipiv, *b, *workers))
		elapsedReport(start, *m, *n)
		pa := orig.Clone()
		lapack.LASWP(pa, ipiv, 0, len(ipiv))
		report = verify(a, pa, orig)
	case "getf2":
		ipiv := make([]int, min(*m, *n))
		fail(lapack.GETF2(a, ipiv))
		elapsedReport(start, *m, *n)
		pa := orig.Clone()
		lapack.LASWP(pa, ipiv, 0, len(ipiv))
		report = verify(a, pa, orig)
	case "tiled":
		if *m != *n {
			fmt.Fprintln(os.Stderr, "tiled verification requires a square matrix")
		}
		lu, err := tiled.GETRF(a, tiled.Options{TileSize: *tile, Workers: *workers})
		fail(err)
		elapsedReport(start, *m, *n)
		if *m == *n {
			solErr := stability.SolveError(orig, *seed+1, func(rhs *matrix.Dense) error {
				lu.Solve(rhs)
				return nil
			})
			fmt.Printf("solve error:  %.3g\n", solErr)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	fmt.Printf("residual:     %.3g\n", report.Residual)
	fmt.Printf("growth:       %.3g\n", report.Growth)
}

func verify(fac, pa, orig *matrix.Dense) stability.LUReport {
	l, u := lapack.ExtractLU(fac)
	prod := blas.Mul(blas.NoTrans, blas.NoTrans, l, u)
	diff := 0.0
	for j := 0; j < pa.Cols; j++ {
		x, y := pa.Col(j), prod.Col(j)
		for i := range x {
			d := x[i] - y[i]
			diff += d * d
		}
	}
	return stability.LUReport{
		Growth:   lapack.GrowthFactor(fac, orig),
		Residual: math.Sqrt(diff) / (orig.NormFrobenius() + 1e-300),
	}
}

func elapsedReport(start time.Time, m, n int) {
	secs := time.Since(start).Seconds()
	gf := baseline.LUFlops(m, n) / secs / 1e9
	fmt.Printf("factored %dx%d in %.3fs (%.2f GFlop/s canonical)\n", m, n, secs, gf)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
