// Command promlint validates Prometheus text exposition read from stdin
// with the strict parser in internal/obs: HELP before TYPE before samples,
// no duplicate families or series, monotone cumulative histogram buckets
// ending at le="+Inf", and _count consistent with the +Inf bucket. It exits
// 0 on valid input and 1 with a diagnostic otherwise, so shell pipelines
// (scripts/facsvc_smoke.sh, ad-hoc curl | promlint) can gate on format
// correctness instead of grepping for substrings.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promlint
//	promlint -require facsvc_engine_shed_total < metrics.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	quiet := flag.Bool("q", false, "suppress the summary line on success")
	flag.Parse()

	fams, err := obs.ParseText(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	byName := make(map[string]bool, len(fams))
	samples := 0
	for _, f := range fams {
		byName[f.Name] = true
		samples += len(f.Samples)
	}
	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			if name = strings.TrimSpace(name); name != "" && !byName[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "promlint: missing required families: %s\n", strings.Join(missing, ", "))
			os.Exit(1)
		}
	}
	if !*quiet {
		fmt.Printf("promlint: ok — %d families, %d samples\n", len(fams), samples)
	}
}
