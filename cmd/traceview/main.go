// Command traceview renders execution traces of the multithreaded CALU and
// CAQR factorizations as text Gantt charts, reproducing the paper's Figures
// 3 and 4 (panel-induced idle time with Tr=1 vs a busy machine with Tr=8).
//
// Usage:
//
//	traceview -exp fig3             # modeled trace, paper-scale, Tr=1
//	traceview -exp fig4             # modeled trace, paper-scale, Tr=8
//	traceview -alg caqr -m 20000 -n 500 -b 100 -tr 4 -cores 8
//	traceview -measured -m 2000 -n 400 -tr 4   # real run, wall-clock trace
//	traceview -csv trace.csv ...    # also dump raw spans
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/simsched"
	"repro/internal/trace"
	"repro/internal/tslu"
)

// reportRunError prints a factorization failure and exits: 130 for an
// operator interrupt (SIGINT mapped to context cancellation), 1 otherwise.
func reportRunError(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "interrupted: factorization cancelled")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "factorization:", err)
	os.Exit(1)
}

func main() {
	var (
		exp      = flag.String("exp", "", "preset: fig3 (Tr=1) or fig4 (Tr=8)")
		alg      = flag.String("alg", "calu", "algorithm: calu or caqr")
		m        = flag.Int("m", 100000, "rows")
		n        = flag.Int("n", 1000, "columns")
		b        = flag.Int("b", 100, "panel block size")
		tr       = flag.Int("tr", 8, "panel parallelism Tr")
		cores    = flag.Int("cores", 8, "virtual cores (modeled) / workers (measured)")
		flat     = flag.Bool("flat", false, "use the flat (height-1) reduction tree")
		measured = flag.Bool("measured", false, "run the real factorization instead of the model")
		width    = flag.Int("width", 120, "gantt chart width in characters")
		csvPath  = flag.String("csv", "", "also write raw spans to this CSV file")
		perfetto = flag.String("perfetto", "", "write a Chrome/Perfetto trace-event JSON file (load in ui.perfetto.dev)")
		critPath = flag.Bool("critical-path", false, "analyze the longest dependency chain and idle attribution")
	)
	flag.Parse()

	switch *exp {
	case "fig3":
		*alg, *m, *n, *b, *tr, *cores = "calu", 100000, 1000, 100, 1, 8
	case "fig4":
		*alg, *m, *n, *b, *tr, *cores = "calu", 100000, 1000, 100, 8, 8
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown preset %q (want fig3 or fig4)\n", *exp)
		os.Exit(2)
	}

	tree := tslu.Binary
	if *flat {
		tree = tslu.Flat
	}
	opt := core.Options{BlockSize: *b, PanelThreads: *tr, Tree: tree, Workers: *cores, Lookahead: true, Trace: true}

	var tra *trace.Trace
	var graph *sched.Graph
	if *measured {
		// Ctrl-C cancels the measured run between tasks; the partial trace
		// is discarded (drained tasks leave no events to render anyway).
		ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stopSig()
		a := matrix.Random(*m, *n, 42)
		var events []sched.Event
		if *alg == "caqr" {
			res, err := core.CAQRWithPoolCtx(ctx, a, opt, nil)
			if err != nil {
				reportRunError(err)
			}
			events, graph = res.Events, res.Graph
		} else {
			res, err := core.CALUWithPoolCtx(ctx, a, opt, nil)
			if err != nil {
				reportRunError(err)
			}
			events, graph = res.Events, res.Graph
		}
		tra = trace.FromSched(events, graph, *cores)
		fmt.Printf("measured %s trace, %dx%d, b=%d, Tr=%d, %d workers\n", *alg, *m, *n, *b, *tr, *cores)
	} else {
		mach := machine.Intel8().WithCores(*cores)
		var g *sched.Graph
		if *alg == "caqr" {
			g = core.BuildCAQRGraph(*m, *n, opt)
		} else {
			g = core.BuildCALUGraph(*m, *n, opt)
		}
		res := simsched.Run(g, mach)
		tra = trace.FromSim(res.Events, g, mach.Cores)
		graph = g
		fmt.Printf("modeled %s trace on %s, %dx%d, b=%d, Tr=%d\n", *alg, mach.Name, *m, *n, *b, *tr)
	}

	tra.Gantt(os.Stdout, *width)
	st := tra.Stats()
	fmt.Printf("\nbusy fractions: P=%.3f L=%.3f U=%.3f S=%.3f idle=%.3f\n",
		st.BusyByKind[sched.KindP], st.BusyByKind[sched.KindL],
		st.BusyByKind[sched.KindU], st.BusyByKind[sched.KindS], st.Idle)

	// Both the report and the Perfetto export want chain membership, so the
	// analysis runs once for either flag.
	var cp *trace.CriticalPath
	if *critPath || *perfetto != "" {
		cp = trace.AnalyzeCriticalPath(tra, graph)
	}
	if *critPath {
		fmt.Println()
		cp.Report(os.Stdout)
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfetto:", err)
			os.Exit(1)
		}
		err = tra.WriteChromeTrace(f, cp.OnPathSet())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfetto:", err)
			os.Exit(1)
		}
		fmt.Println("perfetto trace written to", *perfetto, "(open in ui.perfetto.dev)")
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
		defer f.Close()
		tra.WriteCSV(f)
		fmt.Println("spans written to", *csvPath)
	}
}
