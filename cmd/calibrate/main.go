// Command calibrate measures the host's actual kernel rates and scheduling
// overhead, and prints a machine.Model literal for it. Useful when you want
// the virtual-time experiments (cabench's modeled mode) to predict *this*
// machine instead of the paper's 2009 testbeds.
//
//	go run ./cmd/calibrate
//	go run ./cmd/calibrate -tune          # grid-search MC/KC/NC for this host
//	go run ./cmd/calibrate -tune -n 768   # tune at a different problem size
//
// -tune sweeps the packed Dgemm's cache block sizes (see doc/KERNELS.md)
// and prints the best (MC, KC, NC) triple together with the
// blas.SetBlockSizes call that applies it.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro/internal/baseline"
	"repro/internal/blas"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/sched"
)

func main() {
	tune := flag.Bool("tune", false, "grid-search packed-Dgemm block sizes (MC/KC/NC) and exit")
	tuneN := flag.Int("n", 512, "with -tune: square problem size to tune at")
	flag.Parse()

	if *tune {
		tuneBlocks(*tuneN)
		return
	}

	fmt.Println("measuring kernel rates (a few seconds)...")

	blas3 := rateGemm(384)
	recStream := rateRGETF2(200000, 64)
	recCache := rateRGETF2(2000, 64)
	blas2Stream := rateGETF2(200000, 64)
	blas2Cache := rateGETF2(2000, 64)
	overhead := schedOverhead()

	fmt.Println()
	fmt.Printf("dgemm (384^3):                 %8.2f GFlop/s\n", blas3/1e9)
	fmt.Printf("rgetf2 200000x64 (streaming):  %8.2f GFlop/s\n", recStream/1e9)
	fmt.Printf("rgetf2 2000x64 (cache):        %8.2f GFlop/s\n", recCache/1e9)
	fmt.Printf("dgetf2 200000x64 (streaming):  %8.2f GFlop/s\n", blas2Stream/1e9)
	fmt.Printf("dgetf2 2000x64 (cache):        %8.2f GFlop/s\n", blas2Cache/1e9)
	fmt.Printf("scheduler overhead:            %8.2f us/task\n", overhead*1e6)

	fmt.Println("\nmachine.Model literal for this host:")
	fmt.Printf(`
	&machine.Model{
		Name:             %q,
		Cores:            %d,
		RateBLAS3:        %.3g,
		RateRecursive:    %.3g,
		RateBLAS2:        %.3g,
		RateSmall:        %.3g,
		MemPorts:         2,
		TaskOverhead:     %.3g,
		GranularityFlops: 1e6,
		CacheRows:        4000,
		CacheRecursive:   %.3g,
		CacheBLAS2:       %.3g,
	}
`, "host: "+runtime.GOARCH, runtime.NumCPU(),
		blas3, recStream, blas2Stream, blas2Stream*2,
		overhead, recCache, blas2Cache)
}

// tuneBlocks grid-searches the packed Dgemm's cache block sizes at n^3 and
// prints the winner. The grid brackets the L2/L3-sized defaults: MC rows of
// packed A (MC*KC*8 bytes should sit in L2), KC depth (KC*NR*8-byte B
// strips must stay L1-resident), NC columns of packed B (KC*NC*8 in L3).
func tuneBlocks(n int) {
	mcGrid := []int{64, 96, 128, 192, 256}
	kcGrid := []int{128, 192, 256, 384, 512}
	ncGrid := []int{1024, 2048, 4096}
	origMC, origKC, origNC := blas.BlockSizes()
	defer func() {
		if err := blas.SetBlockSizes(origMC, origKC, origNC); err != nil {
			panic(err)
		}
	}()
	fmt.Printf("tuning packed Dgemm block sizes at n=%d (kernel %s)...\n", n, blas.KernelName())
	bestRate := 0.0
	bestMC, bestKC, bestNC := origMC, origKC, origNC
	for _, nc := range ncGrid {
		for _, kc := range kcGrid {
			for _, mc := range mcGrid {
				if err := blas.SetBlockSizes(mc, kc, nc); err != nil {
					panic(err)
				}
				r := rateGemm(n)
				fmt.Printf("  MC=%-4d KC=%-4d NC=%-5d %7.2f GFlop/s\n", mc, kc, nc, r/1e9)
				if r > bestRate {
					bestRate, bestMC, bestKC, bestNC = r, mc, kc, nc
				}
			}
		}
	}
	fmt.Printf("\nbest: MC=%d KC=%d NC=%d at %.2f GFlop/s\n", bestMC, bestKC, bestNC, bestRate/1e9)
	fmt.Printf("apply with:\n\n\tblas.SetBlockSizes(%d, %d, %d)\n", bestMC, bestKC, bestNC)
}

// rateGemm returns achieved flops/s of the blocked Dgemm at size n^3.
func rateGemm(n int) float64 {
	a := matrix.Random(n, n, 1)
	b := matrix.Random(n, n, 2)
	c := matrix.New(n, n)
	flops := 2 * float64(n) * float64(n) * float64(n)
	// Warm up once, then time the best of three.
	blas.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		blas.Gemm(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c)
		if r := flops / time.Since(start).Seconds(); r > best {
			best = r
		}
	}
	return best
}

func rateRGETF2(m, n int) float64 {
	orig := matrix.Random(m, n, 3)
	flops := baseline.LUFlops(m, n)
	best := 0.0
	for i := 0; i < 3; i++ {
		a := orig.Clone()
		ipiv := make([]int, n)
		start := time.Now()
		if err := lapack.RGETF2(a, ipiv); err != nil {
			panic(err)
		}
		if r := flops / time.Since(start).Seconds(); r > best {
			best = r
		}
	}
	return best
}

func rateGETF2(m, n int) float64 {
	orig := matrix.Random(m, n, 4)
	flops := baseline.LUFlops(m, n)
	best := 0.0
	for i := 0; i < 3; i++ {
		a := orig.Clone()
		ipiv := make([]int, n)
		start := time.Now()
		if err := lapack.GETF2(a, ipiv); err != nil {
			panic(err)
		}
		if r := flops / time.Since(start).Seconds(); r > best {
			best = r
		}
	}
	return best
}

// schedOverhead times the dynamic scheduler on a graph of empty tasks.
func schedOverhead() float64 {
	const n = 20000
	g := sched.NewGraph()
	for i := 0; i < n; i++ {
		g.Add(&sched.Task{Run: func() {}})
	}
	start := time.Now()
	(&sched.Runner{Workers: runtime.NumCPU()}).Run(g)
	return time.Since(start).Seconds() / n
}
