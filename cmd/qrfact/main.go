// Command qrfact factors a random test matrix with a chosen QR algorithm,
// times it, and verifies the result (residual and orthogonality).
//
// Usage:
//
//	qrfact -m 10000 -n 100 -alg tsqr -tr 8
//	qrfact -m 4000 -n 400 -alg caqr -b 100 -tr 4 -flat
//	qrfact -m 1000 -n 1000 -alg tiled -tile 128
//	qrfact -m 2000 -n 200 -alg geqrf          # blocked Householder baseline
//	qrfact -m 2000 -n 200 -alg geqr2          # BLAS-2 baseline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lapack"
	"repro/internal/matrix"
	"repro/internal/stability"
	"repro/internal/tiled"
	"repro/internal/trace"
	"repro/internal/tslu"
	"repro/internal/tsqr"
)

func main() {
	var (
		m       = flag.Int("m", 2000, "rows")
		n       = flag.Int("n", 200, "columns")
		alg     = flag.String("alg", "caqr", "caqr | tsqr | geqrf | pgeqrf | geqr2 | tiled")
		b       = flag.Int("b", 100, "panel block size (caqr)")
		tr      = flag.Int("tr", 4, "panel parallelism Tr (caqr, tsqr)")
		workers = flag.Int("workers", 4, "worker goroutines")
		tile    = flag.Int("tile", 128, "tile size (tiled)")
		flat    = flag.Bool("flat", false, "flat reduction tree")
		seed    = flag.Int64("seed", 1, "matrix seed")
		crit    = flag.Bool("critical-path", false, "trace the run and report the longest dependency chain (caqr)")
	)
	flag.Parse()
	if *crit && *alg != "caqr" {
		fmt.Fprintln(os.Stderr, "-critical-path requires -alg caqr (the scheduled path)")
		os.Exit(2)
	}

	// Ctrl-C cancels the scheduled factorization between tasks instead of
	// killing the process mid-kernel; a second interrupt kills it outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	orig := matrix.Random(*m, *n, *seed)
	a := orig.Clone()
	tree := tslu.Binary
	if *flat {
		tree = tslu.Flat
	}

	var q, r *matrix.Dense
	start := time.Now()
	switch *alg {
	case "caqr":
		opt := core.Options{BlockSize: *b, PanelThreads: *tr, Tree: tree, Workers: *workers, Lookahead: true, Trace: *crit}
		res, err := core.CAQRWithPoolCtx(ctx, a, opt, nil)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "interrupted: factorization cancelled")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, "factorization:", err)
			os.Exit(1)
		}
		elapsedReport(start, *m, *n)
		if *crit {
			tra := trace.FromSched(res.Events, res.Graph, *workers)
			trace.AnalyzeCriticalPath(tra, res.Graph).Report(os.Stdout)
		}
		q, r = res.ExplicitQ(), res.R()
	case "tsqr":
		f := tsqr.Factor(a, *tr, tree)
		elapsedReport(start, *m, *n)
		q, r = f.ExplicitQ(), f.R()
	case "geqrf":
		tau := make([]float64, min(*m, *n))
		lapack.GEQRF(a, tau, *b)
		elapsedReport(start, *m, *n)
		q, r = lapack.ORGQR(a, tau, min(*m, *n)), lapack.ExtractR(a)
	case "pgeqrf":
		tau := make([]float64, min(*m, *n))
		lapack.PGEQRF(a, tau, *b, *workers)
		elapsedReport(start, *m, *n)
		q, r = lapack.ORGQR(a, tau, min(*m, *n)), lapack.ExtractR(a)
	case "geqr2":
		tau := make([]float64, min(*m, *n))
		lapack.GEQR2(a, tau)
		elapsedReport(start, *m, *n)
		q, r = lapack.ORGQR(a, tau, min(*m, *n)), lapack.ExtractR(a)
	case "tiled":
		res := tiled.GEQRF(a, tiled.Options{TileSize: *tile, Workers: *workers})
		elapsedReport(start, *m, *n)
		q, r = res.ExplicitQ(), res.R()
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	// For rectangular baselines, R from ExtractR is k x n; verification
	// needs the square leading part when k == n.
	if r.Rows != r.Cols {
		r = r.View(0, 0, min(r.Rows, r.Cols), r.Cols)
	}
	rep := stability.MeasureQR(orig, q, r)
	fmt.Printf("residual:       %.3g\n", rep.Residual)
	fmt.Printf("orthogonality:  %.3g\n", rep.Orthogonality)
}

func elapsedReport(start time.Time, m, n int) {
	secs := time.Since(start).Seconds()
	gf := baseline.QRFlops(m, n) / secs / 1e9
	fmt.Printf("factored %dx%d in %.3fs (%.2f GFlop/s canonical)\n", m, n, secs, gf)
}
