// Command cabench regenerates the paper's tables and figures.
//
// Usage:
//
//	cabench -list
//	cabench -exp fig5                  # one experiment, modeled at paper scale
//	cabench -exp all                   # everything
//	cabench -exp table1 -measured     # real execution at reduced scale
//	cabench -exp fig8 -workers 8 -v
//	cabench -gemm -json BENCH_gemm.json -min-speedup 1.5
//	cabench -obs-overhead 3            # fail if scheduler metrics cost >3%
//
// Modeled mode (default) builds the algorithms' real task graphs at the
// paper's sizes and schedules them in virtual time on the calibrated
// machine models; measured mode runs the actual factorizations at reduced
// sizes and reports wall-clock GFlop/s.
//
// -gemm runs the kernel-level performance trajectory instead: packed
// Goto-style Dgemm against the frozen baseline across square and panel
// shapes plus the engine-reuse end-to-end LU, optionally writing the
// BENCH_gemm.json report and failing (exit 1) when the square-512 speedup
// drops below -min-speedup. CI's benchmark-smoke job runs exactly that
// gate; the checked-in BENCH_gemm.json is regenerated with a longer
// -sample for stable numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		measured = flag.Bool("measured", false, "run real factorizations at reduced scale instead of the paper-scale model")
		workers  = flag.Int("workers", 0, "goroutines for measured runs (0 = NumCPU)")
		verbose  = flag.Bool("v", false, "print progress")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")

		gemm       = flag.Bool("gemm", false, "run the GEMM kernel trajectory instead of paper experiments")
		jsonPath   = flag.String("json", "", "with -gemm: write the report as JSON to this path")
		minSpeedup = flag.Float64("min-speedup", 0, "with -gemm: exit 1 if the square-512 packed/baseline speedup is below this")
		sample     = flag.Duration("sample", 200*time.Millisecond, "with -gemm: minimum measurement window per case")

		obsOverhead = flag.Float64("obs-overhead", 0, "measure scheduler-instrumentation overhead on engine-reuse; exit 1 if it exceeds this percent")
		obsRounds   = flag.Int("obs-rounds", 3, "with -obs-overhead: alternating on/off measurement rounds")

		verifyOverhead = flag.Float64("verify-overhead", 0, "measure ABFT checksum-verification overhead on engine-reuse; exit 1 if it exceeds this percent")
		verifyRounds   = flag.Int("verify-rounds", 3, "with -verify-overhead: alternating on/off measurement rounds")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	cfg := bench.Config{Workers: *workers}
	if *measured {
		cfg.Mode = bench.Measured
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}

	if *gemm {
		runGemm(cfg, *jsonPath, *minSpeedup, *sample)
		return
	}
	if *obsOverhead > 0 {
		runObsOverhead(cfg, *obsOverhead, *obsRounds)
		return
	}
	if *verifyOverhead > 0 {
		runVerifyOverhead(cfg, *verifyOverhead, *verifyRounds)
		return
	}

	emit := func(t *bench.Table) {
		t.Format(os.Stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, t.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
			t.WriteCSV(f)
			f.Close()
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			emit(e.Run(cfg))
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	emit(e.Run(cfg))
}

// runGemm executes the kernel trajectory, optionally writes the JSON
// report, and enforces the regression gate on the square-512 speedup.
func runGemm(cfg bench.Config, jsonPath string, minSpeedup float64, sample time.Duration) {
	rep := bench.RunGemmReport(cfg, sample)
	rep.Table().Format(os.Stdout)
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		err = rep.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	if minSpeedup > 0 {
		got := rep.SpeedupAt("square-512")
		if got < minSpeedup {
			fmt.Fprintf(os.Stderr, "gemm regression gate: square-512 speedup %.2fx < required %.2fx\n", got, minSpeedup)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gemm gate ok: square-512 speedup %.2fx >= %.2fx\n", got, minSpeedup)
	}
}

// runVerifyOverhead runs the ABFT-verification overhead gate: engine-reuse
// with checksum verification on vs off, best round each, failing when the
// relative cost exceeds maxPct.
func runVerifyOverhead(cfg bench.Config, maxPct float64, rounds int) {
	res := bench.RunVerifyOverhead(cfg, rounds)
	fmt.Printf("verify overhead: verified %.2f ms/op, unverified %.2f ms/op, overhead %.2f%% (%d rounds, best each)\n",
		res.VerifiedMsPerOp, res.UnverifiedMsPerOp, res.OverheadPct, res.Rounds)
	if res.OverheadPct > maxPct {
		fmt.Fprintf(os.Stderr, "verify overhead gate: %.2f%% > allowed %.2f%%\n", res.OverheadPct, maxPct)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "verify overhead gate ok: %.2f%% <= %.2f%%\n", res.OverheadPct, maxPct)
}

// runObsOverhead runs the instrumentation-overhead gate: engine-reuse with
// scheduler metrics on vs off, best round each, failing when the relative
// cost exceeds maxPct.
func runObsOverhead(cfg bench.Config, maxPct float64, rounds int) {
	res := bench.RunObsOverhead(cfg, rounds)
	fmt.Printf("obs overhead: instrumented %.2f ms/op, uninstrumented %.2f ms/op, overhead %.2f%% (%d rounds, best each)\n",
		res.InstrumentedMsPerOp, res.UninstrumentedMsPerOp, res.OverheadPct, res.Rounds)
	if res.OverheadPct > maxPct {
		fmt.Fprintf(os.Stderr, "obs overhead gate: %.2f%% > allowed %.2f%%\n", res.OverheadPct, maxPct)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "obs overhead gate ok: %.2f%% <= %.2f%%\n", res.OverheadPct, maxPct)
}
