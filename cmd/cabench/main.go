// Command cabench regenerates the paper's tables and figures.
//
// Usage:
//
//	cabench -list
//	cabench -exp fig5                  # one experiment, modeled at paper scale
//	cabench -exp all                   # everything
//	cabench -exp table1 -measured     # real execution at reduced scale
//	cabench -exp fig8 -workers 8 -v
//
// Modeled mode (default) builds the algorithms' real task graphs at the
// paper's sizes and schedules them in virtual time on the calibrated
// machine models; measured mode runs the actual factorizations at reduced
// sizes and reports wall-clock GFlop/s.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		measured = flag.Bool("measured", false, "run real factorizations at reduced scale instead of the paper-scale model")
		workers  = flag.Int("workers", 0, "goroutines for measured runs (0 = NumCPU)")
		verbose  = flag.Bool("v", false, "print progress")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	cfg := bench.Config{Workers: *workers}
	if *measured {
		cfg.Mode = bench.Measured
	}
	if *verbose {
		cfg.Verbose = os.Stderr
	}

	emit := func(t *bench.Table) {
		t.Format(os.Stdout)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, t.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "csv:", err)
				os.Exit(1)
			}
			t.WriteCSV(f)
			f.Close()
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			os.Exit(1)
		}
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			emit(e.Run(cfg))
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	emit(e.Run(cfg))
}
