// Command calint is the project's invariant linter: it loads and
// type-checks in-module packages from source (stdlib only — no analysis
// framework dependency) and runs the internal/analysis suite over them,
// enforcing the executor stack's scratch-release, ctx-propagation,
// error-contract and goroutine-hygiene rules that generic vet/staticcheck
// cannot know. See doc/ANALYSIS.md.
//
// Usage:
//
//	go run ./cmd/calint ./...                 # whole module (CI entry point)
//	go run ./cmd/calint ./internal/sched      # one package directory
//	go run ./cmd/calint -checks error-contract,ctx-propagation ./...
//	go run ./cmd/calint -as repro/internal/core ./internal/analysis/testdata/src/errcontract
//
// Exit status: 0 with no findings, 1 when diagnostics were reported, 2 on
// usage or load errors. Findings can be suppressed at the offending line
// with `// calint:ignore <check> [-- reason]`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("calint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the registered checks and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	asPath := fs.String("as", "", "masquerade import path for a single directory argument (fixture testing)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}
	if *list {
		for _, c := range checks {
			fmt.Printf("%-20s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}
	if *asPath != "" && len(dirs) != 1 {
		fmt.Fprintln(os.Stderr, "calint: -as requires exactly one directory argument")
		return 2
	}
	exit := 0
	for _, dir := range dirs {
		var pkg *analysis.Package
		var err error
		if *asPath != "" {
			pkg, err = loader.LoadAs(dir, *asPath)
		} else {
			pkg, err = loader.Load(dir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "calint:", err)
			return 2
		}
		for _, d := range analysis.RunChecks(pkg, checks) {
			fmt.Println(relativize(root, d))
			exit = 1
		}
	}
	return exit
}

// selectChecks resolves the -checks flag against the registry.
func selectChecks(csv string) ([]*analysis.Check, error) {
	all := analysis.Checks()
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*analysis.Check
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(analysis.CheckNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expandPatterns turns the command-line patterns into package directories:
// "./..." (or any pattern ending in "/...") walks the tree below its
// prefix; anything else names a single directory.
func expandPatterns(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if prefix == "" || prefix == "." {
				prefix = root
			}
			expanded, err := analysis.ModuleDirs(prefix)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	return dirs, nil
}

// relativize shortens diagnostic file paths to be module-relative.
func relativize(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
