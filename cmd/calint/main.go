// Command calint is the project's invariant linter: it loads and
// type-checks in-module packages from source (stdlib only — no analysis
// framework dependency) and runs the internal/analysis suite over them —
// the per-package checks (scratch-release, error-contract,
// goroutine-hygiene, metrics-hygiene) plus the whole-program dataflow
// checks (ctx-propagation, lock-order, hotpath-alloc, atomic-discipline)
// built on the CFG and call-graph layer. See doc/ANALYSIS.md.
//
// Usage:
//
//	go run ./cmd/calint ./...                 # whole module (CI entry point)
//	go run ./cmd/calint ./internal/sched      # one package directory
//	go run ./cmd/calint -checks error-contract,lock-order ./...
//	go run ./cmd/calint -explain hotpath-alloc
//	go run ./cmd/calint -baseline .calint-baseline -sarif calint.sarif ./...
//	go run ./cmd/calint -write-baseline .calint-baseline ./...
//	go run ./cmd/calint -as repro/internal/core ./internal/analysis/testdata/src/errcontract
//
// Package directories load in parallel (the loader's type-check cache is
// shared and concurrency-safe); diagnostics are globally sorted by file,
// line, column, check and message so output and the baseline are
// diff-stable. -baseline filters findings through a fingerprinted accept
// file (entries require a written reason; stale entries are reported on
// stderr). -sarif writes a SARIF 2.1.0 log of the active findings for
// GitHub code scanning.
//
// Exit status: 0 with no active findings, 1 when diagnostics were
// reported, 2 on usage or load errors. Findings can be suppressed at the
// offending line with `// calint:ignore <check> [-- reason]`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("calint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the registered checks and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	asPath := fs.String("as", "", "masquerade import path for a single directory argument (fixture testing)")
	explain := fs.String("explain", "", "print a check's rationale and doc anchor, then exit")
	sarifPath := fs.String("sarif", "", "write active findings as SARIF 2.1.0 to this file")
	baselinePath := fs.String("baseline", "", "filter findings through this fingerprinted baseline file")
	writeBaseline := fs.String("write-baseline", "", "write all findings to this baseline file and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *explain != "" {
		e, ok := analysis.Explain(*explain)
		if !ok {
			fmt.Fprintf(os.Stderr, "calint: unknown check %q (have %s)\n", *explain, strings.Join(analysis.CheckNames(), ", "))
			return 2
		}
		fmt.Printf("%s — %s\n\n%s\n\nFull writeup: %s\n", e.Name, e.Doc, e.Rationale, e.Anchor)
		return 0
	}
	pkgChecks, progChecks, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}
	if *list {
		for _, c := range pkgChecks {
			fmt.Printf("%-20s %s\n", c.Name, c.Doc)
		}
		for _, c := range progChecks {
			fmt.Printf("%-20s %s (whole-program)\n", c.Name, c.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}
	if *asPath != "" && len(dirs) != 1 {
		fmt.Fprintln(os.Stderr, "calint: -as requires exactly one directory argument")
		return 2
	}

	pkgs, err := loadAll(loader, dirs, *asPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calint:", err)
		return 2
	}

	// Per-package checks, then the whole-program suite over everything
	// loaded, merged and globally re-sorted for diff-stable output.
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunChecks(pkg, pkgChecks)...)
	}
	if len(progChecks) > 0 {
		prog := analysis.BuildProgram(pkgs)
		diags = append(diags, analysis.RunProgramChecks(prog, progChecks)...)
	}
	analysis.SortDiagnostics(diags)

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calint:", err)
			return 2
		}
		werr := analysis.WriteBaseline(f, diags, root)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "calint:", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "calint: wrote %d finding(s) to %s — replace every TODO with a real reason\n", len(diags), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		data, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calint:", err)
			return 2
		}
		entries, perr := analysis.ParseBaseline(data)
		data.Close()
		if perr != nil {
			fmt.Fprintln(os.Stderr, "calint:", perr)
			return 2
		}
		active, suppressed, stale := analysis.FilterBaseline(diags, entries, root)
		diags = active
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "calint: %d finding(s) suppressed by baseline %s\n", suppressed, *baselinePath)
		}
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "calint: stale baseline entry %s %s %s (no longer matches anything — delete it)\n", e.Fingerprint, e.Check, e.Loc)
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calint:", err)
			return 2
		}
		werr := analysis.WriteSARIF(f, diags, root)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "calint:", werr)
			return 2
		}
	}

	exit := 0
	for _, d := range diags {
		fmt.Println(relativize(root, d))
		exit = 1
	}
	return exit
}

// loadAll loads every directory, in parallel when there are several; the
// loader's cache coalesces shared dependencies. Results keep dirs' order.
func loadAll(loader *analysis.Loader, dirs []string, asPath string) ([]*analysis.Package, error) {
	pkgs := make([]*analysis.Package, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, max(1, runtime.NumCPU()))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if asPath != "" {
				pkgs[i], errs[i] = loader.LoadAs(dir, asPath)
			} else {
				pkgs[i], errs[i] = loader.Load(dir)
			}
		}(i, dir)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// selectChecks resolves the -checks flag against both registries.
func selectChecks(csv string) ([]*analysis.Check, []*analysis.ProgramCheck, error) {
	allPkg := analysis.Checks()
	allProg := analysis.ProgramChecks()
	if csv == "" {
		return allPkg, allProg, nil
	}
	pkgByName := make(map[string]*analysis.Check, len(allPkg))
	for _, c := range allPkg {
		pkgByName[c.Name] = c
	}
	progByName := make(map[string]*analysis.ProgramCheck, len(allProg))
	for _, c := range allProg {
		progByName[c.Name] = c
	}
	var outPkg []*analysis.Check
	var outProg []*analysis.ProgramCheck
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if c, ok := pkgByName[name]; ok {
			outPkg = append(outPkg, c)
			continue
		}
		if c, ok := progByName[name]; ok {
			outProg = append(outProg, c)
			continue
		}
		return nil, nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(analysis.CheckNames(), ", "))
	}
	return outPkg, outProg, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// expandPatterns turns the command-line patterns into package directories:
// "./..." (or any pattern ending in "/...") walks the tree below its
// prefix; anything else names a single directory.
func expandPatterns(root string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	for _, pat := range patterns {
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if prefix == "" || prefix == "." {
				prefix = root
			}
			expanded, err := analysis.ModuleDirs(prefix)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		abs, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	return dirs, nil
}

// relativize shortens diagnostic file paths to be module-relative.
func relativize(root string, d analysis.Diagnostic) string {
	if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d.String()
}
