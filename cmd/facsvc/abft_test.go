package main

// httptest coverage for the ABFT-facing surface: the per-request verify
// flag in both encodings, the ErrCorrupted → 503 + Retry-After mapping,
// the ABFT counters on /metrics, and the drain-aware /readyz probe.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/factor"
	"repro/internal/fault"
)

func TestReadyzDrainFlip(t *testing.T) {
	eng := factor.NewEngineWithConfig(factor.EngineConfig{Workers: 1})
	srv := newServer(eng, factor.EngineConfig{})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz before drain = %d, want 200", got)
	}
	srv.startDrain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", got)
	}
	// Liveness must not flip: killing the process mid-drain would abort the
	// very requests the drain is protecting.
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", got)
	}
}

// TestVerifyFlagBothEncodings: a clean request with verification armed
// succeeds in both encodings — the zero-false-positive contract at the
// HTTP boundary.
func TestVerifyFlagBothEncodings(t *testing.T) {
	url, eng := newTestService(t, factor.EngineConfig{Workers: 2})

	resp := jsonLU(t, url, jsonRequest{
		Rows: 24, Cols: 24, Data: randomData(24, 24, 7),
		Options: jsonOptions{BlockSize: 8}, Verify: true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("verified JSON LU status %d: %s", resp.StatusCode, b)
	}

	bresp, err := http.Post(url+"/v1/qr?rows=24&cols=16&block=8&verify=1",
		"application/octet-stream", bytes.NewReader(binaryBody(randomData(24, 16, 8))))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(bresp.Body)
		t.Fatalf("verified binary QR status %d: %s", bresp.StatusCode, b)
	}

	st := eng.Stats()
	if st.CorruptionsDetected != 0 || st.VerifyFailRetries != 0 {
		t.Fatalf("clean verified requests flagged corruption: %+v", st)
	}
}

// TestCorruptedRequestMapsTo503: with corruption injected and retries off,
// the detected mismatch surfaces as 503 + Retry-After, and the ABFT
// counters appear on /metrics.
func TestCorruptedRequestMapsTo503(t *testing.T) {
	inj := fault.New(11, fault.Rule{Kind: fault.Corrupt, Match: "S k=0", Rate: 1, Count: 1, Perturb: 1e6})
	url, _ := newTestService(t, factor.EngineConfig{
		Workers:         2,
		VerifyChecksums: true,
		PostInterceptor: inj.InterceptPost,
	})

	resp := jsonLU(t, url, jsonRequest{
		Rows: 24, Cols: 24, Data: randomData(24, 24, 9),
		Options: jsonOptions{BlockSize: 8},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("corrupted request status %d: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 for corruption is missing Retry-After")
	}
	if got := inj.Injected(fault.Corrupt); got != 1 {
		t.Fatalf("injected %d corruptions, want 1", got)
	}

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"facsvc_engine_corruptions_detected_total 1",
		"facsvc_engine_panels_recomputed_total",
		"facsvc_engine_verify_fail_retries_total",
		"facsvc_engine_cache_integrity_evictions_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestCorruptedRequestRecoversWithRetries: the same corruption with
// retries on is healed end to end — the client sees 200 and the retry is
// attributed to verification.
func TestCorruptedRequestRecoversWithRetries(t *testing.T) {
	inj := fault.New(11, fault.Rule{Kind: fault.Corrupt, Match: "S k=0", Rate: 1, Count: 1, Perturb: 1e6})
	url, eng := newTestService(t, factor.EngineConfig{
		Workers:         2,
		MaxRetries:      2,
		VerifyChecksums: true,
		PostInterceptor: inj.InterceptPost,
	})

	resp := jsonLU(t, url, jsonRequest{
		Rows: 24, Cols: 24, Data: randomData(24, 24, 9),
		Options: jsonOptions{BlockSize: 8},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("recoverable corrupted request status %d: %s", resp.StatusCode, b)
	}
	var out jsonLUResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Factors) != 24*24 {
		t.Fatalf("malformed factors after recovery: %d values", len(out.Factors))
	}
	st := eng.Stats()
	if st.CorruptionsDetected == 0 || st.VerifyFailRetries == 0 {
		t.Fatalf("recovery not attributed to verification: %+v", st)
	}
}
