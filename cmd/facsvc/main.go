// Command facsvc is the factorization-as-a-service front end: an HTTP
// server exposing the self-healing factor.Engine. It accepts LU and QR
// requests in JSON or raw binary encoding, maps the engine's typed errors
// onto HTTP statuses (429 with Retry-After under overload, 422 for
// singular inputs, 503 with Retry-After for detected silent corruption,
// 504 for expired deadlines), serves the engine's robustness counters at
// /metrics, exposes liveness (/healthz) and drain-aware readiness
// (/readyz) probes, and drains gracefully on SIGTERM. See doc/SERVICE.md
// for the wire contract and operational notes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/factor"
)

// serviceConfig is the flag-derived configuration of one facsvc process.
type serviceConfig struct {
	addr         string
	pprofAddr    string
	engine       factor.EngineConfig
	drainTimeout time.Duration
}

func main() {
	var cfg serviceConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this address (empty = off)")
	flag.IntVar(&cfg.engine.Workers, "workers", 0, "factorization pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.engine.MaxInFlight, "max-in-flight", 64, "admission limit; excess requests get 429 (0 = unlimited)")
	flag.IntVar(&cfg.engine.MaxRetries, "max-retries", 2, "retries for transient factorization failures")
	flag.DurationVar(&cfg.engine.StallTimeout, "stall-timeout", 30*time.Second, "watchdog stall threshold (0 = off)")
	flag.IntVar(&cfg.engine.CacheEntries, "cache-entries", 128, "result cache capacity (0 = off)")
	flag.DurationVar(&cfg.engine.BatchWindow, "batch-window", 500*time.Microsecond, "request coalescing window (0 = off)")
	flag.IntVar(&cfg.engine.BatchMaxRequests, "batch-max-requests", 16, "flush a coalescing window early at this many requests")
	flag.IntVar(&cfg.engine.BatchMaxDim, "batch-max-dim", 256, "largest matrix dimension eligible for coalescing")
	flag.Float64Var(&cfg.engine.GrowthThreshold, "growth-threshold", 0, "default LU pivot-growth guardrail (0 = off)")
	flag.BoolVar(&cfg.engine.VerifyChecksums, "verify", false, "force ABFT checksum verification on every request")
	flag.IntVar(&cfg.engine.MaxPanelRecomputes, "max-panel-recomputes", 0, "corrupted-panel recompute budget per verified LU (0 = default 2, negative = escalate immediately)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown budget for in-flight work")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil {
		log.Fatalf("facsvc: %v", err)
	}
}

// run starts the service and blocks until ctx is cancelled (SIGTERM/SIGINT
// in production, the test's cancel in tests) and the drain completes. If
// ready is non-nil, the bound listener address is sent on it once the
// server is accepting — tests use it to connect to ":0" listeners.
func run(ctx context.Context, cfg serviceConfig, ready chan<- net.Addr) error {
	// The engine registers its metrics under facsvc_engine_* so the /metrics
	// keys match the service's historical hand-rolled exposition.
	cfg.engine.MetricsNamespace = "facsvc_engine"
	eng := factor.NewEngineWithConfig(cfg.engine)
	srv := newServer(eng, cfg.engine)

	// Opt-in profiling listener, kept off the service port so a scrape-happy
	// operator can't accidentally expose pprof with /metrics. Request handlers
	// label work with op/encoding (runtime/pprof), so profiles collected here
	// can be focused with -tagfocus op=lu.
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("facsvc: pprof listen %s: %w", cfg.pprofAddr, err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		go psrv.Serve(pln) // best-effort debug listener; Close below tears it down
		fmt.Fprintf(os.Stderr, "facsvc: pprof on %s\n", pln.Addr())
		defer psrv.Close()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		eng.Close()
		return fmt.Errorf("facsvc: listen %s: %w", cfg.addr, err)
	}
	// Request contexts deliberately do NOT inherit ctx: a shutdown signal
	// must let in-flight factorizations finish (Shutdown waits for them
	// below), not cancel them mid-run.
	hs := &http.Server{Handler: srv.handler()}

	errc := make(chan error, 1)
	go func() {
		defer func() {
			// A crashed accept loop must surface as a process exit, not a
			// silent hang.
			if r := recover(); r != nil {
				errc <- fmt.Errorf("facsvc: serve panicked: %v", r)
			}
		}()
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- fmt.Errorf("facsvc: serve: %w", err)
		} else {
			errc <- nil
		}
	}()
	fmt.Fprintf(os.Stderr, "facsvc: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case err := <-errc:
		eng.Close()
		return err
	case <-ctx.Done():
	}

	// Graceful drain: flip /readyz to 503 first so load balancers stop
	// routing here, then stop accepting, let in-flight requests finish
	// within the budget, and drain the engine the same way.
	srv.startDrain()
	fmt.Fprintf(os.Stderr, "facsvc: shutting down (drain %v)\n", cfg.drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout) // calint:ignore ctx-propagation -- shutdown outlives the cancelled serve context
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		// The deadline passed with requests still open; Close below cancels
		// their factorizations.
		fmt.Fprintf(os.Stderr, "facsvc: forced shutdown: %v\n", err)
	}
	<-errc
	if err := eng.CloseWithTimeout(cfg.drainTimeout); err != nil {
		return fmt.Errorf("facsvc: engine drain: %w", err)
	}
	return nil
}
