package main

// Saturating load test for the ISSUE acceptance criterion: under
// concurrent load beyond MaxInFlight the service answers every request
// with 200 or 429 — it never hangs and never 500s — and /metrics
// reconciles with the client-observed outcomes.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"repro/factor"
)

func TestSaturatingLoadShedsCleanly(t *testing.T) {
	const (
		maxInFlight = 2
		clients     = 24
	)
	url, eng := newTestService(t, factor.EngineConfig{
		Workers:     2,
		MaxInFlight: maxInFlight,
	})

	body, err := json.Marshal(jsonRequest{Rows: 64, Cols: 64, Data: randomData(64, 64, 11), Options: jsonOptions{BlockSize: 16}})
	if err != nil {
		t.Fatal(err)
	}
	statuses := make([]int, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/lu", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}()
	}
	wg.Wait()

	var ok200, shed429 int
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d transport error: %v", i, errs[i])
		}
		switch statuses[i] {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
		default:
			t.Fatalf("client %d got status %d, want 200 or 429", i, statuses[i])
		}
	}
	if ok200 == 0 {
		t.Fatal("no request succeeded under saturation")
	}
	t.Logf("saturation: %d ok, %d shed", ok200, shed429)

	// The engine's own counter must agree with what clients saw.
	if s := eng.Stats(); s.Shed != int64(shed429) {
		t.Fatalf("engine Shed = %d, clients saw %d 429s", s.Shed, shed429)
	}

	// /metrics must reconcile exactly with the client-observed outcomes,
	// through the strict exposition parser rather than string matching.
	fams := scrape(t, url)
	if got, okk := sample(fams, "facsvc_http_requests_total", "op", "lu", "status", "200"); !okk || got != float64(ok200) {
		t.Fatalf(`facsvc_http_requests_total{op="lu",status="200"} = %g ok=%v, want %d`, got, okk, ok200)
	}
	if shed429 > 0 {
		if got, okk := sample(fams, "facsvc_http_requests_total", "op", "lu", "status", "429"); !okk || got != float64(shed429) {
			t.Fatalf(`facsvc_http_requests_total{op="lu",status="429"} = %g ok=%v, want %d`, got, okk, shed429)
		}
	}
	if got, okk := sample(fams, "facsvc_engine_shed_total"); !okk || got != float64(shed429) {
		t.Fatalf("facsvc_engine_shed_total = %g ok=%v, want %d", got, okk, shed429)
	}
	if got, okk := sample(fams, "facsvc_http_requests_started_total", "op", "lu"); !okk || got != float64(clients) {
		t.Fatalf(`facsvc_http_requests_started_total{op="lu"} = %g ok=%v, want %d`, got, okk, clients)
	}
}
