package main

import (
	"os"
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine: every test
// server owns an engine pool and must drain it.
func TestMain(m *testing.M) {
	os.Exit(testutil.LeakCheckMain(m))
}
