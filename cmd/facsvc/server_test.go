package main

// httptest coverage for the service's HTTP contract: the typed-error to
// status-code mapping (429/Retry-After, 504, 400, 422), both payload
// encodings, the cache header, /metrics, and graceful drain.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/factor"
	"repro/internal/obs"
)

// newTestService builds an engine + server + httptest front end; the caller
// gets the base URL and a cleanup-registered engine.
func newTestService(t *testing.T, cfg factor.EngineConfig) (string, *factor.Engine) {
	t.Helper()
	cfg.MetricsNamespace = "facsvc_engine" // mirror run()
	eng := factor.NewEngineWithConfig(cfg)
	ts := httptest.NewServer(newServer(eng, cfg).handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts.URL, eng
}

// jsonLU posts one JSON LU request and returns the response.
func jsonLU(t *testing.T, url string, body jsonRequest) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/lu", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// identity returns the n x n identity as a column-major flat slice.
func identity(n int) []float64 {
	d := make([]float64, n*n)
	for i := 0; i < n; i++ {
		d[i*n+i] = 1
	}
	return d
}

// randomData returns a deterministic well-conditioned column-major matrix.
func randomData(r, c int, seed int64) []float64 {
	m := factor.Random(r, c, seed)
	out := make([]float64, 0, r*c)
	for j := 0; j < c; j++ {
		out = append(out, m.Data[j*m.Stride:j*m.Stride+r]...)
	}
	return out
}

func TestJSONRoundTrip(t *testing.T) {
	url, _ := newTestService(t, factor.EngineConfig{Workers: 2})
	resp := jsonLU(t, url, jsonRequest{Rows: 8, Cols: 8, Data: randomData(8, 8, 1), Options: jsonOptions{BlockSize: 4}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var out jsonLUResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != 8 || out.Cols != 8 || len(out.Factors) != 64 || len(out.Perm) != 8 {
		t.Fatalf("malformed response: rows=%d cols=%d factors=%d perm=%d", out.Rows, out.Cols, len(out.Factors), len(out.Perm))
	}

	// QR over the same service.
	qb, _ := json.Marshal(jsonRequest{Rows: 12, Cols: 8, Data: randomData(12, 8, 2), Options: jsonOptions{BlockSize: 4}})
	qresp, err := http.Post(url+"/v1/qr", "application/json", bytes.NewReader(qb))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(qresp.Body)
		t.Fatalf("qr status %d: %s", qresp.StatusCode, b)
	}
	var qout jsonQRResponse
	if err := json.NewDecoder(qresp.Body).Decode(&qout); err != nil {
		t.Fatal(err)
	}
	if qout.Rows != 8 || qout.Cols != 8 || len(qout.R) != 64 {
		t.Fatalf("malformed QR response: rows=%d cols=%d len=%d", qout.Rows, qout.Cols, len(qout.R))
	}
}

// binaryBody encodes vals as little-endian float64 bytes.
func binaryBody(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	url, _ := newTestService(t, factor.EngineConfig{Workers: 2})
	data := randomData(8, 8, 3)
	resp, err := http.Post(url+"/v1/lu?rows=8&cols=8&block=4", "application/octet-stream", bytes.NewReader(binaryBody(data)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Fatalf("Content-Type = %q", got)
	}
	if resp.Header.Get("X-Permutation") == "" {
		t.Fatal("binary LU response missing X-Permutation")
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 8*8*8 {
		t.Fatalf("binary response is %d bytes, want %d", len(body), 8*8*8)
	}

	// The binary factors must match the JSON encoding of the same request.
	jresp := jsonLU(t, url, jsonRequest{Rows: 8, Cols: 8, Data: data, Options: jsonOptions{BlockSize: 4}})
	defer jresp.Body.Close()
	var jout jsonLUResponse
	if err := json.NewDecoder(jresp.Body).Decode(&jout); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, binaryBody(jout.Factors)) {
		t.Fatal("binary and JSON encodings returned different factors")
	}
}

func TestBadRequests(t *testing.T) {
	url, _ := newTestService(t, factor.EngineConfig{Workers: 2})
	post := func(path, ct string, body []byte) int {
		resp, err := http.Post(url+path, ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Malformed JSON.
	if got := post("/v1/lu", "application/json", []byte("{not json")); got != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", got)
	}
	// Shape/data mismatch.
	b, _ := json.Marshal(jsonRequest{Rows: 4, Cols: 4, Data: []float64{1, 2}})
	if got := post("/v1/lu", "application/json", b); got != http.StatusBadRequest {
		t.Fatalf("short data: status %d, want 400", got)
	}
	// Unknown field.
	if got := post("/v1/lu", "application/json", []byte(`{"rows":1,"cols":1,"data":[1],"bogus":true}`)); got != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", got)
	}
	// Unsupported content type.
	if got := post("/v1/lu", "text/csv", []byte("1,2")); got != http.StatusBadRequest {
		t.Fatalf("bad content type: status %d, want 400", got)
	}
	// Binary without shape.
	if got := post("/v1/lu", "application/octet-stream", binaryBody([]float64{1})); got != http.StatusBadRequest {
		t.Fatalf("binary without shape: status %d, want 400", got)
	}
	// NaN entry: decodes fine, engine rejects with ErrNonFinite -> 400.
	nan := identity(4)
	nan[5] = math.NaN()
	resp, err := http.Post(url+"/v1/lu?rows=4&cols=4", "application/octet-stream", bytes.NewReader(binaryBody(nan)))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN input: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "finite") {
		t.Fatalf("NaN input error does not mention finiteness: %s", msg)
	}
}

func TestSingularIs422(t *testing.T) {
	url, _ := newTestService(t, factor.EngineConfig{Workers: 2})
	resp := jsonLU(t, url, jsonRequest{Rows: 8, Cols: 8, Data: make([]float64, 64)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("singular input: status %d, want 422", resp.StatusCode)
	}
}

// TestOverloadedIs429 saturates a MaxInFlight=1 engine with a request
// blocked inside the pool and checks the next request is rejected with 429
// and a Retry-After hint, per the ISSUE acceptance criterion: under
// saturating load the server says 429, it does not hang or 500.
func TestOverloadedIs429(t *testing.T) {
	gate := make(chan struct{})
	url, eng := newTestService(t, factor.EngineConfig{
		Workers: 2, MaxInFlight: 1,
		Interceptor: func(info factor.TaskInfo) error {
			<-gate
			return nil
		},
	})
	blocked := make(chan int, 1)
	go func() {
		resp := jsonLU(t, url, jsonRequest{Rows: 8, Cols: 8, Data: randomData(8, 8, 4)})
		resp.Body.Close()
		blocked <- resp.StatusCode
	}()
	for i := 0; eng.Stats().InFlight == 0; i++ {
		if i > 2000 {
			close(gate)
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp := jsonLU(t, url, jsonRequest{Rows: 8, Cols: 8, Data: randomData(8, 8, 5)})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		close(gate)
		t.Fatalf("saturated engine: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		close(gate)
		t.Fatal("429 response missing Retry-After")
	}
	close(gate)
	if got := <-blocked; got != http.StatusOK {
		t.Fatalf("blocked request finished with %d, want 200", got)
	}
}

// TestDeadlineIs504 checks a request whose own deadline expires
// mid-factorization maps to 504 Gateway Timeout.
func TestDeadlineIs504(t *testing.T) {
	url, _ := newTestService(t, factor.EngineConfig{
		Workers: 2,
		// Cancellation never preempts a running kernel, so the stall must be
		// short: each task sleeps past the request deadline, the queued rest
		// drain unrun, and the handler reports 504 once the running ones end.
		Interceptor: func(info factor.TaskInfo) error {
			time.Sleep(200 * time.Millisecond)
			return nil
		},
	})
	resp := jsonLU(t, url, jsonRequest{Rows: 8, Cols: 8, Data: randomData(8, 8, 6), TimeoutMS: 50})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}
}

// TestCacheHitIdenticalBytes posts the same binary request twice with
// cache=1 and checks the second is a hit with a byte-identical body and no
// new pool work.
func TestCacheHitIdenticalBytes(t *testing.T) {
	url, eng := newTestService(t, factor.EngineConfig{Workers: 2, CacheEntries: 8})
	data := binaryBody(randomData(16, 16, 7))
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(url+"/v1/lu?rows=16&cols=16&block=4&cache=1", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	r1, b1 := post()
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request: status %d X-Cache %q, want 200 miss", r1.StatusCode, r1.Header.Get("X-Cache"))
	}
	tasks := eng.Stats().PoolTasks
	r2, b2 := post()
	if r2.StatusCode != http.StatusOK || r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat request: status %d X-Cache %q, want 200 hit", r2.StatusCode, r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cache hit returned different bytes than the miss")
	}
	if r1.Header.Get("X-Permutation") != r2.Header.Get("X-Permutation") {
		t.Fatal("cache hit returned a different permutation")
	}
	if got := eng.Stats().PoolTasks; got != tasks {
		t.Fatalf("cache hit ran %d new pool tasks", got-tasks)
	}
	if s := eng.Stats(); s.CacheHits != 1 || s.CacheMisses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", s.CacheHits, s.CacheMisses)
	}
}

// scrape fetches /metrics and parses it with the strict exposition parser;
// any format violation fails the test.
func scrape(t *testing.T, url string) []obs.ParsedFamily {
	t.Helper()
	m, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	if got := m.Header.Get("Content-Type"); got != obs.ExpositionContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", got, obs.ExpositionContentType)
	}
	body, err := io.ReadAll(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, body)
	}
	return fams
}

// sample finds one series in a scrape by name and exact label pairs.
func sample(fams []obs.ParsedFamily, name string, labels ...string) (float64, bool) {
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != name {
				continue
			}
			ok := true
			for i := 0; i+1 < len(labels); i += 2 {
				if s.Label(labels[i]) != labels[i+1] {
					ok = false
					break
				}
			}
			if ok && len(s.LabelNames)*2 == len(labels) {
				return s.Value, true
			}
		}
	}
	return 0, false
}

func TestMetricsEndpoint(t *testing.T) {
	url, _ := newTestService(t, factor.EngineConfig{Workers: 2})
	resp := jsonLU(t, url, jsonRequest{Rows: 8, Cols: 8, Data: randomData(8, 8, 8)})
	resp.Body.Close()
	fams := scrape(t, url)

	// The historical hand-rolled keys survive the registry rebuild.
	for name, want := range map[string]float64{
		"facsvc_engine_shed_total":       0,
		"facsvc_engine_cache_hits_total": 0,
		"facsvc_http_in_flight":          0,
	} {
		got, ok := sample(fams, name)
		if !ok {
			t.Fatalf("metrics missing %s", name)
		}
		if got != want {
			t.Fatalf("%s = %g, want %g", name, got, want)
		}
	}
	if got, ok := sample(fams, "facsvc_engine_pool_tasks_total"); !ok || got < 1 {
		t.Fatalf("facsvc_engine_pool_tasks_total = %g ok=%v, want >= 1", got, ok)
	}
	if got, ok := sample(fams, "facsvc_http_requests_total", "op", "lu", "status", "200"); !ok || got != 1 {
		t.Fatalf(`facsvc_http_requests_total{op="lu",status="200"} = %g ok=%v, want 1`, got, ok)
	}
	if got, ok := sample(fams, "facsvc_http_requests_started_total", "op", "lu"); !ok || got != 1 {
		t.Fatalf(`facsvc_http_requests_started_total{op="lu"} = %g ok=%v, want 1`, got, ok)
	}
	if got, ok := sample(fams, "facsvc_http_request_seconds_count", "op", "lu"); !ok || got != 1 {
		t.Fatalf(`facsvc_http_request_seconds_count{op="lu"} = %g ok=%v, want 1`, got, ok)
	}
	if got, ok := sample(fams, "facsvc_engine_request_seconds_count", "op", "lu"); !ok || got != 1 {
		t.Fatalf(`facsvc_engine_request_seconds_count{op="lu"} = %g ok=%v, want 1`, got, ok)
	}
}

// TestMetricsConsistentUnderBurst scrapes /metrics continuously while cached
// requests land and checks the invariant the registry rebuild exists for: a
// mid-burst scrape never reports more engine cache hits than HTTP requests
// started, because started counts before the engine call and the engine
// registry is gathered first.
func TestMetricsConsistentUnderBurst(t *testing.T) {
	url, _ := newTestService(t, factor.EngineConfig{Workers: 2, CacheEntries: 8})
	data := binaryBody(randomData(12, 12, 11))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(url+"/v1/lu?rows=12&cols=12&block=4&cache=1", "application/octet-stream", bytes.NewReader(data))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	defer func() { close(stop); <-done }()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		fams := scrape(t, url)
		hits, _ := sample(fams, "facsvc_engine_cache_hits_total")
		started, ok := sample(fams, "facsvc_http_requests_started_total", "op", "lu")
		if hits > 0 && !ok {
			t.Fatalf("scrape has %g cache hits but no started counter", hits)
		}
		if hits > started {
			t.Fatalf("inconsistent scrape: %g cache hits > %g started requests", hits, started)
		}
	}
}

// TestGracefulDrain runs the real run() loop, blocks a request inside the
// engine, delivers the shutdown signal (ctx cancel), and checks the
// in-flight request still completes with 200 before run returns cleanly.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	cfg := serviceConfig{
		addr: "127.0.0.1:0",
		engine: factor.EngineConfig{
			Workers: 2,
			Interceptor: func(info factor.TaskInfo) error {
				<-gate
				return nil
			},
		},
		drainTimeout: 10 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- run(ctx, cfg, ready) }()
	addr := <-ready
	url := fmt.Sprintf("http://%s", addr)

	reqDone := make(chan int, 1)
	go func() {
		resp := jsonLU(t, url, jsonRequest{Rows: 8, Cols: 8, Data: randomData(8, 8, 9)})
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	// Wait until the request is blocked inside the engine, then "SIGTERM".
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "facsvc_engine_in_flight 1") {
			break
		}
		if time.Now().After(deadline) {
			close(gate)
			t.Fatal("request never reached the engine")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	// The server must keep the in-flight request alive across shutdown.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	select {
	case status := <-reqDone:
		if status != http.StatusOK {
			t.Fatalf("in-flight request finished with %d across drain, want 200", status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed during drain")
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run never returned after drain")
	}
}
