package main

// Request/response encoding for the factorization service. Two encodings
// are supported on the same endpoints, chosen by Content-Type:
//
//   - application/json: {"rows","cols","data"(column-major),"options",...}
//   - application/octet-stream: raw column-major float64 little-endian
//     matrix bytes, with shape and options in query parameters — the
//     zero-copy path for numeric clients.
//
// Responses mirror the request encoding. See doc/SERVICE.md for the full
// wire contract.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/factor"
)

// maxBodyBytes bounds request bodies (JSON or binary): 64 MiB holds a
// 2896x2896 float64 matrix, far past the service's intended small-request
// workload.
const maxBodyBytes = 64 << 20

// jsonOptions is the wire form of the numeric options a request may set.
// Scheduling-only knobs (workers, tracing) belong to the server, not the
// request.
type jsonOptions struct {
	BlockSize       int     `json:"block_size,omitempty"`
	PanelThreads    int     `json:"panel_threads,omitempty"`
	Tree            string  `json:"tree,omitempty"` // "binary" (default), "flat" or "hybrid"
	StructuredTree  bool    `json:"structured_tree,omitempty"`
	GrowthThreshold float64 `json:"growth_threshold,omitempty"`
}

// jsonRequest is the JSON request body for /v1/lu and /v1/qr.
type jsonRequest struct {
	Rows      int         `json:"rows"`
	Cols      int         `json:"cols"`
	Data      []float64   `json:"data"` // column-major, rows*cols entries
	Options   jsonOptions `json:"options"`
	TimeoutMS int         `json:"timeout_ms,omitempty"`
	Cache     bool        `json:"cache,omitempty"`
	// Verify arms ABFT checksum verification for this request (see
	// factor.Options.Verify); the server may also force it on globally.
	Verify bool `json:"verify,omitempty"`
}

// jsonLUResponse is the JSON response for /v1/lu: the packed factors (L
// unit-lower under U, column-major) and the permutation vector.
type jsonLUResponse struct {
	Rows    int       `json:"rows"`
	Cols    int       `json:"cols"`
	Factors []float64 `json:"factors"`
	Perm    []int     `json:"perm"`
	Cache   string    `json:"cache"` // "hit", "miss" or "off"
}

// jsonQRResponse is the JSON response for /v1/qr: the upper-triangular R.
type jsonQRResponse struct {
	Rows  int       `json:"rows"`
	Cols  int       `json:"cols"`
	R     []float64 `json:"r"`
	Cache string    `json:"cache"`
}

// request is a decoded factorization request, encoding-independent.
type request struct {
	a       *factor.Matrix
	opt     factor.Options
	timeout time.Duration
	cache   bool
	binary  bool
}

// decodeError marks a request the client got wrong (HTTP 400), as opposed
// to a server-side failure.
type decodeError struct{ msg string }

func (e *decodeError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &decodeError{msg: fmt.Sprintf(format, args...)}
}

// parseTree maps the wire tree name to the factor enum.
func parseTree(s string) (factor.Tree, error) {
	switch strings.ToLower(s) {
	case "", "binary":
		return factor.Binary, nil
	case "flat":
		return factor.Flat, nil
	case "hybrid":
		return factor.Hybrid, nil
	default:
		return 0, badRequest("unknown tree %q (want binary, flat or hybrid)", s)
	}
}

// decodeRequest reads one factorization request in either encoding.
func decodeRequest(r *http.Request) (*request, error) {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	switch strings.TrimSpace(ct) {
	case "application/octet-stream":
		return decodeBinary(r)
	case "", "application/json":
		return decodeJSON(r)
	default:
		return nil, badRequest("unsupported Content-Type %q", ct)
	}
}

func decodeJSON(r *http.Request) (*request, error) {
	var jr jsonRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jr); err != nil {
		return nil, badRequest("invalid JSON body: %v", err)
	}
	if jr.Rows <= 0 || jr.Cols <= 0 {
		return nil, badRequest("rows and cols must be positive, got %dx%d", jr.Rows, jr.Cols)
	}
	if len(jr.Data) != jr.Rows*jr.Cols {
		return nil, badRequest("data length %d != rows*cols = %d", len(jr.Data), jr.Rows*jr.Cols)
	}
	tree, err := parseTree(jr.Options.Tree)
	if err != nil {
		return nil, err
	}
	return &request{
		a: factor.FromColMajor(jr.Rows, jr.Cols, jr.Rows, jr.Data),
		opt: factor.Options{
			BlockSize:       jr.Options.BlockSize,
			PanelThreads:    jr.Options.PanelThreads,
			Tree:            tree,
			StructuredTree:  jr.Options.StructuredTree,
			GrowthThreshold: jr.Options.GrowthThreshold,
			Verify:          jr.Verify,
		},
		timeout: time.Duration(jr.TimeoutMS) * time.Millisecond,
		cache:   jr.Cache,
	}, nil
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, badRequest("query parameter %s=%q is not an integer", name, s)
	}
	return v, nil
}

func decodeBinary(r *http.Request) (*request, error) {
	rows, err := queryInt(r, "rows")
	if err != nil {
		return nil, err
	}
	cols, err := queryInt(r, "cols")
	if err != nil {
		return nil, err
	}
	if rows <= 0 || cols <= 0 {
		return nil, badRequest("binary requests need positive rows and cols query parameters, got %dx%d", rows, cols)
	}
	want := rows * cols * 8
	if want > maxBodyBytes {
		return nil, badRequest("matrix %dx%d exceeds the %d-byte body limit", rows, cols, maxBodyBytes)
	}
	buf, err := io.ReadAll(io.LimitReader(r.Body, int64(want)+1))
	if err != nil {
		return nil, badRequest("reading matrix bytes: %v", err)
	}
	if len(buf) != want {
		return nil, badRequest("body is %d bytes, want rows*cols*8 = %d", len(buf), want)
	}
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	block, err := queryInt(r, "block")
	if err != nil {
		return nil, err
	}
	panels, err := queryInt(r, "panels")
	if err != nil {
		return nil, err
	}
	tree, err := parseTree(r.URL.Query().Get("tree"))
	if err != nil {
		return nil, err
	}
	var growth float64
	if s := r.URL.Query().Get("growth"); s != "" {
		growth, err = strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, badRequest("query parameter growth=%q is not a number", s)
		}
	}
	timeoutMS, err := queryInt(r, "timeout_ms")
	if err != nil {
		return nil, err
	}
	return &request{
		a: factor.FromColMajor(rows, cols, rows, data),
		opt: factor.Options{
			BlockSize:       block,
			PanelThreads:    panels,
			Tree:            tree,
			StructuredTree:  r.URL.Query().Get("structured") == "1",
			GrowthThreshold: growth,
			Verify:          r.URL.Query().Get("verify") == "1",
		},
		timeout: time.Duration(timeoutMS) * time.Millisecond,
		cache:   r.URL.Query().Get("cache") == "1",
		binary:  true,
	}, nil
}

// matrixBytes serializes m column-major as little-endian float64s,
// compacting away any stride padding.
func matrixBytes(m *factor.Matrix) []byte {
	out := make([]byte, 8*m.Rows*m.Cols)
	i := 0
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for _, v := range col {
			binary.LittleEndian.PutUint64(out[i:], math.Float64bits(v))
			i += 8
		}
	}
	return out
}

// matrixValues flattens m column-major into a []float64 for JSON.
func matrixValues(m *factor.Matrix) []float64 {
	out := make([]float64, 0, m.Rows*m.Cols)
	for j := 0; j < m.Cols; j++ {
		out = append(out, m.Data[j*m.Stride:j*m.Stride+m.Rows]...)
	}
	return out
}

// writeLUResponse writes the factors in the request's encoding. Binary
// responses carry the permutation in the X-Permutation header
// (space-separated) and the shape in X-Matrix-Rows/X-Matrix-Cols.
func writeLUResponse(w http.ResponseWriter, req *request, f *factor.LUFactorization, cacheState string) {
	factors := f.Factors()
	perm := f.PermutationVector()
	w.Header().Set("X-Cache", cacheState)
	if req.binary {
		ps := make([]string, len(perm))
		for i, p := range perm {
			ps[i] = strconv.Itoa(p)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Matrix-Rows", strconv.Itoa(factors.Rows))
		w.Header().Set("X-Matrix-Cols", strconv.Itoa(factors.Cols))
		w.Header().Set("X-Permutation", strings.Join(ps, " "))
		w.WriteHeader(http.StatusOK)
		w.Write(matrixBytes(factors))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(jsonLUResponse{
		Rows:    factors.Rows,
		Cols:    factors.Cols,
		Factors: matrixValues(factors),
		Perm:    perm,
		Cache:   cacheState,
	})
}

// writeQRResponse writes R in the request's encoding.
func writeQRResponse(w http.ResponseWriter, req *request, f *factor.QRFactorization, cacheState string) {
	rMat := f.R()
	w.Header().Set("X-Cache", cacheState)
	if req.binary {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Matrix-Rows", strconv.Itoa(rMat.Rows))
		w.Header().Set("X-Matrix-Cols", strconv.Itoa(rMat.Cols))
		w.WriteHeader(http.StatusOK)
		w.Write(matrixBytes(rMat))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(jsonQRResponse{
		Rows:  rMat.Rows,
		Cols:  rMat.Cols,
		R:     matrixValues(rMat),
		Cache: cacheState,
	})
}
