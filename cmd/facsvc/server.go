package main

// HTTP layer of the factorization service: routing, the typed-error to
// status-code mapping, and the /metrics endpoint. The handlers are a thin
// shell over factor.Engine — every robustness decision (admission control,
// retries, watchdog, coalescing, result cache) lives in the engine, and the
// handlers only translate its vocabulary into HTTP's.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/factor"
)

// statusClientClosedRequest is nginx's non-standard 499: the client gave up
// before the factorization finished. Distinguishing it from 504 keeps the
// deadline metric honest.
const statusClientClosedRequest = 499

// server is the facsvc HTTP front end over one factor.Engine.
type server struct {
	eng *factor.Engine
	cfg factor.EngineConfig // for Retry-After; the engine keeps its own copy

	mu       sync.Mutex
	requests map[string]int64 // "op status" -> count
	inFlight int64
}

func newServer(eng *factor.Engine, cfg factor.EngineConfig) *server {
	return &server{eng: eng, cfg: cfg, requests: make(map[string]int64)}
}

// handler returns the service's routing table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lu", func(w http.ResponseWriter, r *http.Request) { s.factorize(w, r, "lu") })
	mux.HandleFunc("POST /v1/qr", func(w http.ResponseWriter, r *http.Request) { s.factorize(w, r, "qr") })
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// retryAfterSeconds derives the Retry-After hint for 429 responses from the
// engine's backoff configuration: the base retry delay, rounded up to whole
// seconds (the header's granularity), at least 1.
func (s *server) retryAfterSeconds() int {
	d := s.cfg.RetryBackoff
	if d <= 0 {
		d = 2 * time.Millisecond
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// count records one finished request for /metrics.
func (s *server) count(op string, status int) {
	s.mu.Lock()
	s.requests[fmt.Sprintf("%s %d", op, status)]++
	s.mu.Unlock()
}

// factorize serves one LU or QR request end to end.
func (s *server) factorize(w http.ResponseWriter, r *http.Request, op string) {
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.inFlight--
		s.mu.Unlock()
	}()

	req, err := decodeRequest(r)
	if err != nil {
		s.count(op, http.StatusBadRequest)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	if req.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.timeout)
		defer cancel()
	}

	cacheState := "off"
	switch op {
	case "lu":
		var f *factor.LUFactorization
		var hit bool
		if req.cache {
			f, hit, err = s.eng.LUCachedCtx(ctx, req.a, req.opt)
			cacheState = cacheName(hit)
		} else {
			f, err = s.eng.LUCtx(ctx, req.a, req.opt)
		}
		if err != nil {
			s.fail(w, op, err)
			return
		}
		s.count(op, http.StatusOK)
		writeLUResponse(w, req, f, cacheState)
	case "qr":
		var f *factor.QRFactorization
		var hit bool
		if req.cache {
			f, hit, err = s.eng.QRCachedCtx(ctx, req.a, req.opt)
			cacheState = cacheName(hit)
		} else {
			f, err = s.eng.QRCtx(ctx, req.a, req.opt)
		}
		if err != nil {
			s.fail(w, op, err)
			return
		}
		s.count(op, http.StatusOK)
		writeQRResponse(w, req, f, cacheState)
	}
}

func cacheName(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// fail maps an engine error onto its HTTP status. The order matters:
// deadline/cancellation are checked before the generic buckets because a
// cancelled request's error chain may wrap several sentinels.
func (s *server) fail(w http.ResponseWriter, op string, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, factor.ErrOverloaded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	case errors.Is(err, factor.ErrShape), errors.Is(err, factor.ErrNonFinite):
		status = http.StatusBadRequest
	case errors.Is(err, factor.ErrSingular):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, factor.ErrEngineClosed):
		status = http.StatusServiceUnavailable
	}
	s.count(op, status)
	http.Error(w, err.Error(), status)
}

// metrics serves a plain-text snapshot: the engine's self-healing, cache
// and batching counters plus the HTTP layer's own request accounting, in a
// Prometheus-compatible exposition format.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "facsvc_engine_retries_total %d\n", st.Retries)
	fmt.Fprintf(w, "facsvc_engine_shed_total %d\n", st.Shed)
	fmt.Fprintf(w, "facsvc_engine_stalled_total %d\n", st.Stalled)
	fmt.Fprintf(w, "facsvc_engine_in_flight %d\n", st.InFlight)
	fmt.Fprintf(w, "facsvc_engine_cache_hits_total %d\n", st.CacheHits)
	fmt.Fprintf(w, "facsvc_engine_cache_misses_total %d\n", st.CacheMisses)
	fmt.Fprintf(w, "facsvc_engine_cache_evictions_total %d\n", st.CacheEvictions)
	fmt.Fprintf(w, "facsvc_engine_batched_requests_total %d\n", st.BatchedRequests)
	fmt.Fprintf(w, "facsvc_engine_batch_flushes_total %d\n", st.BatchFlushes)
	fmt.Fprintf(w, "facsvc_engine_pool_tasks_total %d\n", st.PoolTasks)

	s.mu.Lock()
	keys := make([]string, 0, len(s.requests))
	for k := range s.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, len(keys))
	for i, k := range keys {
		var op string
		var status int
		fmt.Sscanf(k, "%s %d", &op, &status)
		lines[i] = fmt.Sprintf("facsvc_http_requests_total{op=%q,status=\"%d\"} %d", op, status, s.requests[k])
	}
	inFlight := s.inFlight
	s.mu.Unlock()
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "facsvc_http_in_flight %d\n", inFlight)
}
