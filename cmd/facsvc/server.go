package main

// HTTP layer of the factorization service: routing, the typed-error to
// status-code mapping, and the /metrics endpoint. The handlers are a thin
// shell over factor.Engine — every robustness decision (admission control,
// retries, watchdog, coalescing, result cache) lives in the engine, and the
// handlers only translate its vocabulary into HTTP's.
//
// All service metrics live in internal/obs registries: the engine's own
// (namespace facsvc_engine, owned by factor.Engine) and the HTTP layer's
// (facsvc_http_*, owned here). /metrics gathers the engine registry FIRST
// and the HTTP registry second; with facsvc_http_requests_started_total
// incremented before each engine call, that ordering guarantees a scrape in
// the middle of a burst can never report more engine-side events (cache
// hits, retries, batched requests) than HTTP requests that started them.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"repro/factor"
	"repro/internal/obs"
)

// statusClientClosedRequest is nginx's non-standard 499: the client gave up
// before the factorization finished. Distinguishing it from 504 keeps the
// deadline metric honest.
const statusClientClosedRequest = 499

// server is the facsvc HTTP front end over one factor.Engine.
type server struct {
	eng *factor.Engine
	cfg factor.EngineConfig // for Retry-After; the engine keeps its own copy

	// draining flips once on shutdown, before the listener stops accepting:
	// /readyz reports 503 from then on so a load balancer pulls the
	// instance while in-flight requests finish. /healthz stays 200 — the
	// process is alive and must not be killed mid-drain.
	draining atomic.Bool

	reg      *obs.Registry
	started  *obs.CounterVec   // facsvc_http_requests_started_total{op}
	requests *obs.CounterVec   // facsvc_http_requests_total{op,status}
	inFlight *obs.Gauge        // facsvc_http_in_flight
	seconds  *obs.HistogramVec // facsvc_http_request_seconds{op}
}

func newServer(eng *factor.Engine, cfg factor.EngineConfig) *server {
	reg := obs.NewRegistry()
	return &server{
		eng: eng,
		cfg: cfg,
		reg: reg,
		started: reg.CounterVec("facsvc_http_requests_started_total",
			"Factorization requests that passed decoding and entered the engine.",
			"op"),
		requests: reg.CounterVec("facsvc_http_requests_total",
			"Finished factorization requests by operation and HTTP status.",
			"op", "status"),
		inFlight: reg.Gauge("facsvc_http_in_flight",
			"Factorization requests currently inside a handler."),
		seconds: reg.HistogramVec("facsvc_http_request_seconds",
			"Wall time of finished factorization requests, by operation.",
			nil, "op"),
	}
}

// handler returns the service's routing table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lu", func(w http.ResponseWriter, r *http.Request) { s.factorize(w, r, "lu") })
	mux.HandleFunc("POST /v1/qr", func(w http.ResponseWriter, r *http.Request) { s.factorize(w, r, "qr") })
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// startDrain flips the readiness probe to 503. Called on shutdown before
// http.Server.Shutdown so traffic stops being routed here first.
func (s *server) startDrain() { s.draining.Store(true) }

// retryAfterSeconds derives the Retry-After hint for 429 responses from the
// engine's backoff configuration: the base retry delay, rounded up to whole
// seconds (the header's granularity), at least 1.
func (s *server) retryAfterSeconds() int {
	d := s.cfg.RetryBackoff
	if d <= 0 {
		d = 2 * time.Millisecond
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// count records one finished request for /metrics.
func (s *server) count(op string, status int) {
	s.requests.With(op, fmt.Sprintf("%d", status)).Inc()
}

// encodingName labels the request's wire encoding for pprof.
func encodingName(req *request) string {
	if req.binary {
		return "binary"
	}
	return "json"
}

// factorize serves one LU or QR request end to end.
func (s *server) factorize(w http.ResponseWriter, r *http.Request, op string) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	start := time.Now()
	defer func() { s.seconds.With(op).Observe(time.Since(start).Seconds()) }()

	req, err := decodeRequest(r)
	if err != nil {
		s.count(op, http.StatusBadRequest)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	if req.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.timeout)
		defer cancel()
	}

	// Counted before the engine call: see the /metrics ordering invariant in
	// the file comment.
	s.started.With(op).Inc()

	// pprof labels make CPU profiles attributable per operation and wire
	// encoding (go tool pprof -tagfocus op=lu).
	cacheState := "off"
	pprof.Do(ctx, pprof.Labels("op", op, "encoding", encodingName(req)), func(ctx context.Context) {
		switch op {
		case "lu":
			var f *factor.LUFactorization
			var hit bool
			if req.cache {
				f, hit, err = s.eng.LUCachedCtx(ctx, req.a, req.opt)
				cacheState = cacheName(hit)
			} else {
				f, err = s.eng.LUCtx(ctx, req.a, req.opt)
			}
			if err != nil {
				s.fail(w, op, err)
				return
			}
			s.count(op, http.StatusOK)
			writeLUResponse(w, req, f, cacheState)
		case "qr":
			var f *factor.QRFactorization
			var hit bool
			if req.cache {
				f, hit, err = s.eng.QRCachedCtx(ctx, req.a, req.opt)
				cacheState = cacheName(hit)
			} else {
				f, err = s.eng.QRCtx(ctx, req.a, req.opt)
			}
			if err != nil {
				s.fail(w, op, err)
				return
			}
			s.count(op, http.StatusOK)
			writeQRResponse(w, req, f, cacheState)
		}
	})
}

func cacheName(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// fail maps an engine error onto its HTTP status. The order matters:
// deadline/cancellation are checked before the generic buckets because a
// cancelled request's error chain may wrap several sentinels.
func (s *server) fail(w http.ResponseWriter, op string, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, factor.ErrOverloaded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = statusClientClosedRequest
	case errors.Is(err, factor.ErrShape), errors.Is(err, factor.ErrNonFinite):
		status = http.StatusBadRequest
	case errors.Is(err, factor.ErrSingular):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, factor.ErrCorrupted):
		// Verified factorization detected unrecovered silent corruption:
		// transient, not a property of the input, so the client should
		// retry — after the engine's own backoff window.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
	case errors.Is(err, factor.ErrEngineClosed):
		status = http.StatusServiceUnavailable
	}
	s.count(op, status)
	http.Error(w, err.Error(), status)
}

// metrics serves the Prometheus text exposition of both registries. The
// engine registry is gathered strictly before the HTTP one so counters that
// only move inside an engine call (cache hits, retries) can never exceed
// facsvc_http_requests_started_total in one scrape.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	engine := s.eng.Registry().Gather()
	front := s.reg.Gather()
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	if err := engine.WriteText(w); err != nil {
		return // client went away mid-scrape; nothing to recover
	}
	_ = front.WriteText(w)
}
