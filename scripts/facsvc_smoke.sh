#!/usr/bin/env bash
# End-to-end smoke test for cmd/facsvc: start the server, factor over both
# payload encodings, check /metrics reconciles, then verify graceful
# SIGTERM drain. CI runs this after unit tests; it needs only bash, curl
# and the go toolchain.
set -euo pipefail

ADDR="127.0.0.1:${FACSVC_PORT:-18431}"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"; kill "$SRV_PID" 2>/dev/null || true' EXIT

echo "== build =="
go build -o "$WORKDIR/facsvc" ./cmd/facsvc

echo "== start =="
"$WORKDIR/facsvc" -addr "$ADDR" -cache-entries 16 -batch-window 500us \
    2>"$WORKDIR/server.log" &
SRV_PID=$!
for i in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$SRV_PID" 2>/dev/null; then
        echo "server died during startup:"; cat "$WORKDIR/server.log"; exit 1
    fi
    sleep 0.1
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== JSON LU =="
cat >"$WORKDIR/req.json" <<'EOF'
{"rows":4,"cols":4,
 "data":[4,3,2,1, 1,3,2,1, 2,2,3,1, 1,1,1,3],
 "options":{"block_size":2},"cache":true}
EOF
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data @"$WORKDIR/req.json" "$BASE/v1/lu" >"$WORKDIR/lu1.json"
grep -q '"factors"' "$WORKDIR/lu1.json"
grep -q '"perm"' "$WORKDIR/lu1.json"
grep -q '"cache":"miss"' "$WORKDIR/lu1.json"

echo "== JSON LU repeat (cache hit) =="
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data @"$WORKDIR/req.json" "$BASE/v1/lu" >"$WORKDIR/lu2.json"
grep -q '"cache":"hit"' "$WORKDIR/lu2.json"

echo "== binary LU =="
# 2x2 identity, column-major little-endian float64: 1.0 0.0 0.0 1.0
printf '\x00\x00\x00\x00\x00\x00\xf0\x3f\x00\x00\x00\x00\x00\x00\x00\x00' >"$WORKDIR/eye.bin"
printf '\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\xf0\x3f' >>"$WORKDIR/eye.bin"
curl -fsS -D "$WORKDIR/bin.headers" -X POST \
    -H 'Content-Type: application/octet-stream' \
    --data-binary @"$WORKDIR/eye.bin" \
    "$BASE/v1/lu?rows=2&cols=2" >"$WORKDIR/bin.out"
grep -qi 'X-Permutation: 0 1' "$WORKDIR/bin.headers"
[ "$(wc -c <"$WORKDIR/bin.out")" -eq 32 ]
# The LU of the identity is the identity: the bytes round-trip unchanged.
cmp "$WORKDIR/eye.bin" "$WORKDIR/bin.out"

echo "== JSON QR =="
curl -fsS -X POST -H 'Content-Type: application/json' \
    --data '{"rows":4,"cols":2,"data":[1,1,1,1, 1,2,3,4]}' \
    "$BASE/v1/qr" | grep -q '"r"'

echo "== bad input is 400 =="
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' --data '{not json' "$BASE/v1/lu")
[ "$code" = "400" ]

echo "== metrics reconcile =="
curl -fsS "$BASE/metrics" >"$WORKDIR/metrics.txt"
# Strict Prometheus exposition check: format validity plus required families
# (cmd/promlint exits 1 on either violation).
go run ./cmd/promlint \
    -require facsvc_engine_shed_total,facsvc_engine_request_seconds,facsvc_http_requests_total,facsvc_http_requests_started_total,facsvc_http_request_seconds \
    <"$WORKDIR/metrics.txt"
grep -q 'facsvc_engine_cache_hits_total 1' "$WORKDIR/metrics.txt"
grep -q 'facsvc_http_requests_total{op="lu",status="200"} 3' "$WORKDIR/metrics.txt"
grep -q 'facsvc_http_requests_total{op="lu",status="400"} 1' "$WORKDIR/metrics.txt"
grep -q 'facsvc_http_requests_total{op="qr",status="200"} 1' "$WORKDIR/metrics.txt"
grep -q 'facsvc_engine_shed_total 0' "$WORKDIR/metrics.txt"
# 3 well-formed LU requests entered the engine; the malformed one failed
# decoding before the started counter.
grep -q 'facsvc_http_requests_started_total{op="lu"} 3' "$WORKDIR/metrics.txt"

echo "== SIGTERM drain =="
kill -TERM "$SRV_PID"
for i in $(seq 1 100); do
    if ! kill -0 "$SRV_PID" 2>/dev/null; then break; fi
    sleep 0.1
done
if kill -0 "$SRV_PID" 2>/dev/null; then
    echo "server did not exit within 10s of SIGTERM"; exit 1
fi
wait "$SRV_PID" && rc=0 || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "server exited $rc after SIGTERM:"; cat "$WORKDIR/server.log"; exit 1
fi
grep -q 'shutting down' "$WORKDIR/server.log"

echo "facsvc smoke: OK"
